"""Tests for the regularization/projection baselines (EWC, SI, A-GEM)."""

import numpy as np
import pytest

from repro.baselines import AGEM, BaselineConfig, EWC, SI
from repro.continual import Scenario, run_continual


@pytest.fixture()
def config():
    return BaselineConfig.fast(epochs=4)


class TestEWC:
    def test_runs_protocol(self, config, tiny_stream):
        method = EWC(config, in_channels=1, image_size=16, rng=0)
        result = run_continual(method, tiny_stream, Scenario.TIL)
        assert 0.0 <= result.acc <= 1.0

    def test_fisher_anchor_created(self, config, tiny_stream):
        method = EWC(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        assert len(method._anchors) == 1
        anchor = method._anchors[0]
        # One entry per backbone parameter; fisher values non-negative.
        assert len(anchor) == len(list(method.backbone.parameters()))
        for fisher, theta in anchor.values():
            assert np.all(fisher >= 0)
            assert fisher.shape == theta.shape

    def test_penalty_zero_at_anchor(self, config, tiny_stream):
        method = EWC(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        # Parameters have not moved since the anchor snapshot.
        penalty = method._ewc_penalty()
        assert penalty.item() == pytest.approx(0.0, abs=1e-12)

    def test_penalty_positive_after_drift(self, config, tiny_stream):
        method = EWC(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        for param in method.backbone.parameters():
            param.data += 0.1
        assert method._ewc_penalty().item() > 0


class TestSI:
    def test_runs_protocol(self, config, tiny_stream):
        method = SI(config, in_channels=1, image_size=16, rng=0)
        result = run_continual(method, tiny_stream, Scenario.TIL)
        assert 0.0 <= result.acc <= 1.0

    def test_importance_accumulates(self, config, tiny_stream):
        method = SI(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        total_importance = sum(
            float(np.abs(v).sum()) for v in method._importance.values()
        )
        assert total_importance > 0

    def test_omega_reset_at_boundary(self, config, tiny_stream):
        method = SI(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        for omega in method._omega.values():
            assert np.allclose(omega, 0.0)

    def test_importance_nonnegative(self, config, tiny_stream):
        method = SI(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        method.observe_task(tiny_stream[1])
        for value in method._importance.values():
            assert np.all(value >= 0)


class TestAGEM:
    def test_runs_protocol(self, config, tiny_stream):
        method = AGEM(config, in_channels=1, image_size=16, rng=0)
        result = run_continual(method, tiny_stream, Scenario.TIL)
        assert 0.0 <= result.acc <= 1.0

    def test_memory_populated_at_task_end(self, config, tiny_stream):
        method = AGEM(config, in_channels=1, image_size=16, rng=0)
        method.observe_task(tiny_stream[0])
        assert len(method.memory) > 0

    def test_projection_math(self):
        """Projected gradient must have non-negative dot with reference."""
        rng = np.random.default_rng(0)
        g = rng.normal(size=50)
        ref = rng.normal(size=50)
        if g @ ref >= 0:
            ref = -g + 0.01 * rng.normal(size=50)  # force a conflict
        assert g @ ref < 0
        projected = g - (g @ ref) / (ref @ ref) * ref
        assert projected @ ref > -1e-10

    def test_projections_counted_across_tasks(self, config, tiny_stream):
        method = AGEM(config, in_channels=1, image_size=16, rng=0)
        for task in tiny_stream:
            method.observe_task(task)
        # Conflicts are data-dependent; the counter must at least be valid.
        assert method.projections_applied >= 0


class TestExperimentRegistry:
    @pytest.mark.parametrize("name", ["EWC", "SI", "A-GEM"])
    def test_buildable_from_registry(self, name):
        from repro.experiments import build_method, get_profile

        method = build_method(name, get_profile("smoke"), in_channels=1, image_size=16)
        assert method.name == name
