"""Unit tests for :mod:`repro.telemetry` — metrics, traces, profiling.

The distributed propagation story lives in
``test_trace_propagation.py``; this file pins the local contracts:
histogram math, registry snapshot semantics, sampling modes, phase
collection, the store write-through, and the shared ``stats`` payload
(including the zero-frame compression-ratio rendering the CLI shows
as ``-``).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import netio, telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_spans(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    telemetry.clear_spans()
    yield
    telemetry.clear_spans()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2.5

    def test_counter_is_thread_safe(self):
        counter = Counter("c")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestHistogram:
    def test_empty_snapshot_and_quantile(self):
        histogram = Histogram("h")
        assert histogram.snapshot() == {"count": 0}
        assert histogram.quantile(0.5) is None

    def test_quantiles_clamp_to_observed_range(self):
        histogram = Histogram("h")
        for value in (0.002, 0.002, 0.002):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == snap["max"] == 0.002
        # Interpolation inside the (0.001, 0.0025] bucket must clamp to
        # the observed values, not report a bucket edge nobody hit.
        assert snap["p50"] == 0.002
        assert snap["p99"] == 0.002

    def test_quantiles_order_and_overflow_bucket(self):
        histogram = Histogram("h")
        for i in range(100):
            histogram.observe(0.001 * (i + 1))  # 1ms .. 100ms
        histogram.observe(120.0)  # beyond the last bound
        snap = histogram.snapshot()
        assert snap["count"] == 101
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"] == 120.0
        assert 0.02 < snap["p50"] < 0.08

    def test_mean_and_sum(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        histogram.observe(3.0)
        snap = histogram.snapshot()
        assert snap["sum"] == 4.0
        assert snap["mean"] == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(0.01)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 2}
        assert snap["gauges"] == {"depth": 7}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # JSON-ready end to end

    def test_collectors_run_at_read_time_and_failures_isolate(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.register_collector("good", lambda: dict(state))

        def broken():
            raise RuntimeError("mid-shutdown")

        registry.register_collector("bad", broken)
        state["n"] = 2  # mutate after registration: read-time wins
        snap = registry.snapshot()
        assert snap["collectors"]["good"] == {"n": 2}
        assert snap["collectors"]["bad"] == {"error": "mid-shutdown"}

    def test_unregister_and_reset(self):
        registry = MetricsRegistry()
        registry.register_collector("c", dict)
        registry.unregister_collector("c")
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_unsampled_by_default_but_histogram_fills(self):
        before = telemetry.registry.histogram("span.unit_test_op").count
        with telemetry.span("unit_test_op") as ctx:
            assert ctx is None
        assert telemetry.recent_spans() == []
        assert telemetry.registry.histogram("span.unit_test_op").count == before + 1

    def test_sampled_root_and_nesting(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with telemetry.span("outer") as outer_ctx:
            assert outer_ctx is not None and outer_ctx.sampled
            with telemetry.span("inner"):
                pass
        inner, outer = telemetry.recent_spans()
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None

    def test_attrs_recorded_on_sampled_spans(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with telemetry.span("op", cells=3):
            pass
        [record] = telemetry.recent_spans()
        assert record["cells"] == 3

    def test_fractional_sampling_zero_never_originates(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0.0")
        for _ in range(20):
            with telemetry.span("op"):
                pass
        assert telemetry.recent_spans() == []

    def test_adopt_joins_foreign_trace(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)  # participate-only
        with telemetry.adopt({"id": "a" * 16, "span": "b" * 8}) as ctx:
            assert ctx.trace_id == "a" * 16
            assert telemetry.current_trace_id() == "a" * 16
            with telemetry.span("child"):
                pass
        [child] = telemetry.recent_spans()
        assert child["trace"] == "a" * 16
        assert telemetry.current_trace_id() is None

    def test_adopt_disabled_under_trace_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not telemetry.trace_enabled()
        with telemetry.adopt({"id": "a" * 16, "span": "b" * 8}) as ctx:
            assert ctx is None
            with telemetry.span("child"):
                pass
        assert telemetry.recent_spans() == []

    def test_adopt_tolerates_malformed_fields(self):
        for bad in (None, {}, {"span": "x"}, "not-a-dict", {"id": ""}):
            with telemetry.adopt(bad) as ctx:
                assert ctx is None

    def test_wire_context_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert telemetry.wire_context() is None
        with telemetry.span("op"):
            wire = telemetry.wire_context()
            assert set(wire) == {"id", "span"}
            assert wire["id"] == telemetry.current_trace_id()

    def test_span_buffer_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        for index in range(600):
            with telemetry.span("op", index=index):
                pass
        spans = telemetry.recent_spans()
        assert len(spans) == 512
        assert spans[-1]["index"] == 599
        assert telemetry.recent_spans(limit=5)[0]["index"] == 595


# ----------------------------------------------------------------------
# Profiling phases
# ----------------------------------------------------------------------
class TestPhases:
    def test_phase_inert_without_collector(self):
        # No collector open: the marker must not record anything.
        with telemetry.phase("train"):
            pass
        with telemetry.collect_phases() as phases:
            pass
        assert phases == {}

    def test_phases_accumulate_and_nest(self):
        with telemetry.collect_phases() as phases:
            with telemetry.phase("train"):
                with telemetry.phase("forward"):
                    pass
                with telemetry.phase("forward"):
                    pass
        assert set(phases) == {"train", "forward"}
        assert phases["train"] >= phases["forward"] >= 0.0

    def test_record_phase_provenance_writes_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.store import RunStore

        telemetry.record_phase_provenance(
            "k" * 32, {"train": 1.25, "eval": 0.5}, seed=3
        )
        rows = RunStore().provenance("k" * 32)
        events = {row["event"]: json.loads(row["detail"]) for row in rows}
        assert events["span:train"] == {"seconds": 1.25, "seed": 3}
        assert events["span:eval"] == {"seconds": 0.5, "seed": 3}

    def test_record_phase_provenance_tags_active_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE", "1")
        from repro.store import RunStore

        with telemetry.span("cell"):
            trace_id = telemetry.current_trace_id()
            telemetry.record_phase_provenance("k" * 32, {"train": 1.0})
        [row] = RunStore().provenance("k" * 32)
        assert json.loads(row["detail"])["trace"] == trace_id

    def test_record_phase_provenance_survives_disabled_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        telemetry.record_phase_provenance("k" * 32, {"train": 1.0})  # must not raise

    def test_empty_phases_or_key_are_noops(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.store import RunStore

        telemetry.record_phase_provenance("", {"train": 1.0})
        telemetry.record_phase_provenance("k" * 32, {})
        assert RunStore().provenance() == []


# ----------------------------------------------------------------------
# Shared stats payload + WireStats rendering
# ----------------------------------------------------------------------
class TestStatsPayload:
    def test_assembles_gate_wire_and_telemetry(self):
        gate = netio.InflightGate(4)
        wire = netio.WireStats()
        payload = netio.stats_payload(gate, wire, timeouts=2)
        assert payload["limit"] == 4
        assert payload["timeouts"] == 2
        assert payload["wire"]["bytes_out"] == 0
        assert set(payload["telemetry"]) >= {"counters", "gauges", "histograms"}

    def test_zero_frames_report_null_ratio(self):
        """Satellite: a server that never compressed a frame reports
        ``compressed_ratio: null`` — no div-by-zero, no ``nan``."""
        wire = netio.WireStats()
        snap = wire.snapshot()
        assert snap["compressed_ratio"] is None
        json.dumps(snap)  # null survives the stats op

    def test_ratio_after_compressed_traffic(self):
        wire = netio.WireStats()
        wire.count_out(2, 100, raw_nbytes=400)
        assert wire.snapshot()["compressed_ratio"] == 4.0

    def test_telemetry_optional(self):
        payload = netio.stats_payload(None, None, with_telemetry=False)
        assert "telemetry" not in payload and "wire" not in payload


# ----------------------------------------------------------------------
# CLI: repro-experiments telemetry {snapshot,spans}
# ----------------------------------------------------------------------
class TestTelemetryCLI:
    def _main(self, argv):
        from repro.experiments.__main__ import main

        return main(argv)

    def test_snapshot_renders_local_registry(self, capsys):
        telemetry.registry.counter("unit.test_counter").inc(3)
        telemetry.registry.histogram("unit.test_latency").observe(0.005)
        assert self._main(["telemetry", "snapshot"]) == 0
        out = capsys.readouterr().out
        assert "unit.test_counter" in out and "3" in out
        assert "unit.test_latency" in out

    def test_snapshot_json_mode(self, capsys):
        telemetry.registry.counter("unit.json_counter").inc()
        assert self._main(["telemetry", "snapshot", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["telemetry"]["counters"]["unit.json_counter"] >= 1

    def test_snapshot_renders_dash_for_null_ratio(self, capsys):
        """Satellite: the CLI shows ``-`` when no frames were compressed."""
        from repro.serve.net import ServeApp
        import asyncio

        class _StubService:
            def stats(self):
                return {"requests": 0}

            async def close(self):
                pass

        async def main():
            app = ServeApp(_StubService())
            host, port = await app.start()
            try:
                return host, port, await asyncio.to_thread(
                    self._main, ["telemetry", "snapshot", "--address", f"{host}:{port}"]
                )
            finally:
                await app.close()

        host, port, code = asyncio.run(main())
        assert code == 0
        out = capsys.readouterr().out
        assert "compression -" in out

    def test_snapshot_unreachable_address_is_clean_error(self, capsys):
        assert (
            self._main(
                ["telemetry", "snapshot", "--address", "127.0.0.1:1", "--timeout", "0.5"]
            )
            == 2
        )
        assert "failed" in capsys.readouterr().err

    def test_spans_lists_sampled_spans(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with telemetry.span("cli_test_span", cells=2):
            pass
        assert self._main(["telemetry", "spans"]) == 0
        out = capsys.readouterr().out
        assert "cli_test_span" in out and "cells=2" in out

    def test_spans_json_mode(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with telemetry.span("cli_json_span"):
            pass
        assert self._main(["telemetry", "spans", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "cli_json_span" for entry in payload)


# ----------------------------------------------------------------------
# v1 tail sniff (the O(1)-per-request trace read)
# ----------------------------------------------------------------------
class TestTraceTailSniff:
    def _request(self, line: bytes):
        return netio.WireRequest(proto=1, parts=[line])

    def test_reads_appended_trace_without_parse(self):
        payload = {"op": "predict", "data": "x" * 100}
        payload["trace"] = {"id": "ab" * 8, "span": "cd" * 4}
        line = json.dumps(payload).encode()
        trace = netio._request_trace(self._request(line))
        assert trace == {"id": "ab" * 8, "span": "cd" * 4}

    def test_falls_back_to_parse_for_small_foreign_lines(self):
        # A foreign client put trace first: tail sniff misses, the
        # sub-64KB line is parsed instead.
        line = json.dumps(
            {"trace": {"id": "ab" * 8, "span": "cd" * 4}, "op": "predict"}
        ).encode()
        trace = netio._request_trace(self._request(line))
        assert trace is not None and trace["id"] == "ab" * 8

    def test_big_lines_without_tail_trace_stay_unparsed(self):
        line = json.dumps(
            {"trace": {"id": "ab" * 8, "span": "cd" * 4}, "blob": "x" * 100_000}
        ).encode()
        assert netio._request_trace(self._request(line)) is None

    def test_traceless_line_yields_none(self):
        line = json.dumps({"op": "stats"}).encode()
        assert netio._request_trace(self._request(line)) is None
