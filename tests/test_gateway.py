"""Tests for :mod:`repro.gateway` — the elastic serving gateway.

Three layers: the pure routing structures (hash ring, scaling policy),
the registry's liveness/assignment state machine, and in-process
end-to-end routing — a gateway over real ReplicaApps with *disjoint*
caches, exercising consistent-hash routing, wire checkpoint transport,
busy steering, dead-replica failover, and provenance recording.
"""

import asyncio

import numpy as np
import pytest

from repro import netio
from repro.api import Session
from repro.continual import Scenario
from repro.data.synthetic import mnist_usps
from repro.engine import cache
from repro.engine.registry import SCENARIOS, register_scenario
from repro.gateway import GatewayApp, GatewayClient, HashRing, ReplicaRegistry
from repro.gateway.autoscaler import desired_target
from repro.gateway.replica import ReplicaApp
from repro.serve import InferenceService

TINY = dict(samples_per_class=4, test_samples_per_class=8, epochs=2, warmup_epochs=1)

if "_test/gateway_digits" not in SCENARIOS:

    @register_scenario("_test/gateway_digits", description="2-task stream (gateway tests)")
    def _gateway_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps",
            samples_per_class=4,
            test_samples_per_class=8,
            rng=seed,
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "gateway-cache"))
    cache.reset_pins()
    yield
    cache.reset_pins()


@pytest.fixture()
def session(tmp_path):
    return Session(cache_dir=tmp_path / "gateway-cache")


def checkpointed_spec(session, method="FineTune", seed=0):
    handle = (
        session.run(method)
        .on("_test/gateway_digits")
        .profile("smoke", **TINY)
        .seed(seed)
        .checkpoint()
        .start()
    )
    spec = handle.specs[0]
    handle.release()
    return spec


def sample_images(spec, task: int = 0):
    stream = SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)
    return stream[task].target_test.arrays()


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_and_bounded(self):
        ring = HashRing()
        for node in ("a", "b", "c", "d"):
            ring.add(node)
        first = ring.assign("model-1", 2)
        assert first == ring.assign("model-1", 2)
        assert len(first) == 2 and len(set(first)) == 2
        assert ring.assign("model-1", 10) == ring.assign("model-1", 4)  # capped at n

    def test_removal_only_remaps_touched_keys(self):
        """The consistent-hashing property the gateway exists for."""
        ring = HashRing()
        for node in ("a", "b", "c", "d", "e"):
            ring.add(node)
        keys = [f"model-{i}" for i in range(200)]
        before = {key: ring.assign(key, 2) for key in keys}
        ring.remove("c")
        for key in keys:
            after = ring.assign(key, 2)
            if "c" not in before[key]:
                assert after == before[key], f"{key} moved without touching c"
            else:
                assert "c" not in after

    def test_spread_is_roughly_uniform(self):
        ring = HashRing(vnodes=64)
        for node in ("a", "b", "c", "d"):
            ring.add(node)
        counts = {node: 0 for node in "abcd"}
        for i in range(400):
            counts[ring.assign(f"k{i}", 1)[0]] += 1
        assert min(counts.values()) > 400 / 4 / 3  # no node starves

    def test_add_remove_idempotent_and_empty_ring(self):
        ring = HashRing()
        assert ring.assign("k", 2) == []
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        ring.remove("missing")
        ring.remove("a")
        assert ring.assign("k", 1) == []


# ----------------------------------------------------------------------
# Scaling policy
# ----------------------------------------------------------------------
class TestDesiredTarget:
    KW = dict(
        min_replicas=1,
        max_replicas=4,
        high_depth=4.0,
        low_depth=0.5,
        scale_up_after=5.0,
        scale_down_after=30.0,
    )

    def test_sustained_pressure_scales_up_one_step_per_window(self):
        marks = {}
        assert desired_target(1, 10.0, 0.0, marks, **self.KW) == 1  # breach starts
        assert desired_target(1, 10.0, 4.9, marks, **self.KW) == 1  # not sustained yet
        assert desired_target(1, 10.0, 5.0, marks, **self.KW) == 2  # one step
        assert desired_target(2, 10.0, 5.1, marks, **self.KW) == 2  # window restarted
        assert desired_target(2, 10.0, 10.0, marks, **self.KW) == 3

    def test_brief_spike_does_not_scale(self):
        marks = {}
        assert desired_target(1, 10.0, 0.0, marks, **self.KW) == 1
        assert desired_target(1, 1.0, 2.0, marks, **self.KW) == 1  # back to normal
        assert desired_target(1, 10.0, 3.0, marks, **self.KW) == 1  # fresh window
        assert desired_target(1, 10.0, 7.9, marks, **self.KW) == 1

    def test_sustained_idle_scales_down_to_floor(self):
        marks = {}
        assert desired_target(3, 0.0, 0.0, marks, **self.KW) == 3
        assert desired_target(3, 0.0, 30.0, marks, **self.KW) == 2
        assert desired_target(2, 0.0, 60.0, marks, **self.KW) == 1
        assert desired_target(1, 0.0, 90.0, marks, **self.KW) == 1  # floor holds

    def test_ceiling_holds(self):
        marks = {}
        desired_target(4, 10.0, 0.0, marks, **self.KW)
        assert desired_target(4, 10.0, 100.0, marks, **self.KW) == 4


# ----------------------------------------------------------------------
# Registry liveness + assignment
# ----------------------------------------------------------------------
class TestReplicaRegistry:
    def test_hello_heartbeat_expire_cycle(self):
        events = []
        registry = ReplicaRegistry(
            lease_timeout=10.0,
            on_event=lambda e, key=None, replica=None, detail="": events.append(e),
        )
        replica = registry.hello("one", "127.0.0.1", 1234)
        assert replica.replica_id in registry.ring
        assert registry.heartbeat(replica.replica_id, {"inflight": 3}) is not None
        assert registry.replicas[replica.replica_id].queue_depth == 3
        assert registry.heartbeat("bogus") is None
        # A missed-lease sweep kills it and empties the ring.
        lapsed = registry.expire(now=replica.deadline + 1)
        assert [r.replica_id for r in lapsed] == [replica.replica_id]
        assert len(registry.ring) == 0 and registry.alive() == []
        assert events == ["replica-join", "replica-dead"]

    def test_drain_leaves_rotation_and_reassigns(self):
        events = []
        registry = ReplicaRegistry(
            replication=1,
            on_event=lambda e, key=None, replica=None, detail="": events.append(
                (e, key)
            ),
        )
        a = registry.hello("a", "h", 1)
        b = registry.hello("b", "h", 2)
        # Find a key assigned to `a` so draining it forces a reassignment.
        key = next(
            f"model-{i}"
            for i in range(100)
            if registry.assignments(f"model-{i}")
            and registry.assignments(f"model-{i}")[0].replica_id == a.replica_id
        )
        registry.drain(a.replica_id)
        assert registry.replicas[a.replica_id].state == "draining"
        routed = registry.route(key)
        assert routed is not None and routed.replica_id == b.replica_id
        assert ("replica-drain", None) in events
        assert any(e == "model-reassign" and k == key for e, k in events)

    def test_route_prefers_least_loaded_and_respects_exclude(self):
        registry = ReplicaRegistry(replication=2)
        a = registry.hello("a", "h", 1)
        b = registry.hello("b", "h", 2)
        a.inflight = 5
        chosen = registry.route("m")
        assert chosen.replica_id == b.replica_id
        steered = registry.route("m", exclude={b.replica_id})
        assert steered.replica_id == a.replica_id
        assert registry.route("m", exclude={a.replica_id, b.replica_id}) is None


# ----------------------------------------------------------------------
# End-to-end: gateway over real replicas with disjoint caches
# ----------------------------------------------------------------------
class _Fleet:
    """A gateway plus N in-process ReplicaApps on private caches."""

    def __init__(self, gateway_session, tmp_path, count=2, max_inflight=None):
        self.gateway = GatewayApp(
            gateway_session, lease_timeout=30.0, retry_base_delay=0.005
        )
        self.replicas = []
        for index in range(count):
            session = Session(cache_dir=tmp_path / f"replica-{index}")
            app = ReplicaApp(
                InferenceService(session, max_delay_ms=1), max_inflight=max_inflight
            )
            self.replicas.append(app)

    async def __aenter__(self):
        self.host, self.port = await self.gateway.start()
        for index, app in enumerate(self.replicas):
            host, port = await app.start()
            await netio.request_async(
                self.host,
                self.port,
                {"op": "hello", "name": f"t{index}", "host": host, "port": port},
            )
        return self

    async def __aexit__(self, *exc):
        for app in self.replicas:
            await app.close()
        await self.gateway.close()


class TestGatewayEndToEnd:
    def test_routes_and_ships_checkpoints_bitwise_equal(self, session, tmp_path):
        """Replicas start with empty caches; the gateway must deliver
        the checkpoint over the wire, and answers must be bitwise-equal
        to a direct predict on the gateway's own copy."""
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path, count=2) as fleet:
                client.port = fleet.port
                served = await client.predict_async(spec, images, task_id=0)
                again = await client.predict_async(spec, images, task_id=0)
                stats = await client.stats_async()
                return served, again, stats

        served, again, stats = asyncio.run(main())
        assert np.array_equal(served, direct)
        assert np.array_equal(again, direct)
        # The serving replica had nothing: exactly one wire delivery
        # per replica that answered, and none of the replicas trained.
        assert stats["traffic"]["checkpoint_pushes"] >= 1
        assert stats["traffic"]["forwarded"] == 2

    def test_killed_replica_fails_over_without_client_errors(self, session, tmp_path):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path, count=2) as fleet:
                client.port = fleet.port
                warm = await client.predict_async(spec, images, task_id=0)
                # Tear one replica's socket down mid-fleet (SIGKILL
                # equivalent for an in-process app): routing must mark
                # it dead on the torn forward and steer to the survivor.
                await fleet.replicas[0].close()
                answers = [
                    await client.predict_async(spec, images, task_id=0)
                    for _ in range(4)
                ]
                stats = await client.stats_async()
                return warm, answers, stats

        warm, answers, stats = asyncio.run(main())
        assert np.array_equal(warm, direct)
        for answer in answers:
            assert np.array_equal(answer, direct)
        assert stats["alive"] == 1
        assert stats["traffic"]["no_replica_failures"] == 0

    def test_busy_replicas_steer_then_recover(self, session, tmp_path):
        """With every replica shedding (max_inflight=1 and a stalled
        forward), the gateway retries with backoff until capacity
        frees — the client never sees the busy answers."""
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(
                session, tmp_path, count=2, max_inflight=1
            ) as fleet:
                client.port = fleet.port
                # Warm both replicas' caches through the gateway first.
                await client.predict_async(spec, images[:1], task_id=0)

                release = asyncio.Event()
                for app in fleet.replicas:
                    real = app.service.predict_many

                    async def stalled(*args, _real=real, **kwargs):
                        await release.wait()
                        return await _real(*args, **kwargs)

                    app.service.predict_many = stalled

                stuck = [
                    asyncio.ensure_future(
                        client.predict_async(spec, images[:1], task_id=0)
                    )
                    for _ in range(2)
                ]
                await asyncio.sleep(0.05)  # let them occupy the fleet
                racing = asyncio.ensure_future(
                    client.predict_async(spec, images[:1], task_id=0)
                )
                await asyncio.sleep(0.05)
                release.set()
                results = await asyncio.gather(*stuck, racing)
                stats = await client.stats_async()
                return results, stats

        results, stats = asyncio.run(main())
        # Every caller got predictions — the busy answers were absorbed
        # by gateway steering plus (if the stall outlasted the gateway's
        # own attempts) the client's retry-with-backoff.
        assert all(isinstance(r, np.ndarray) for r in results)
        assert stats["traffic"]["busy_steers"] >= 1

    def test_multi_model_routing_spreads_and_isolates(self, session, tmp_path):
        """Four models route across the fleet; each answer matches its
        own model's direct predictions (no cross-model bleed)."""
        specs = [checkpointed_spec(session, seed=seed) for seed in range(4)]
        expected = {}
        batches = {}
        for spec in specs:
            images, _labels = sample_images(spec)
            batches[spec.seed] = images[:4]
            expected[spec.seed] = session.load_model(spec).predict_multi(
                images[:4], 0, [Scenario.TIL]
            )[Scenario.TIL]
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path, count=3) as fleet:
                client.port = fleet.port
                answers = await asyncio.gather(
                    *(
                        client.predict_async(spec, batches[spec.seed], task_id=0)
                        for spec in specs
                    )
                )
                stats = await client.stats_async()
                return answers, stats

        answers, stats = asyncio.run(main())
        for spec, answer in zip(specs, answers):
            assert np.array_equal(answer, expected[spec.seed]), f"seed {spec.seed}"
        assert len(stats["models"]) == 4
        for assigned in stats["models"].values():
            assert 1 <= len(assigned) <= 2  # bounded replication

    def test_unknown_model_is_a_clean_client_error(self, session, tmp_path):
        spec = checkpointed_spec(session)
        missing = session.spec(
            "FineTune", "_test/gateway_digits", profile_overrides=TINY, seed=99
        )
        images, _labels = sample_images(spec)
        client = GatewayClient("127.0.0.1", session, attempts=3)

        async def main():
            async with _Fleet(session, tmp_path, count=1) as fleet:
                client.port = fleet.port
                with pytest.raises(RuntimeError, match="checkpoint unavailable"):
                    await client.predict_async(missing, images[:1], task_id=0)

        asyncio.run(main())

    def test_provenance_records_lifecycle_and_transport(self, session, tmp_path):
        from repro.store import RunStore

        spec = checkpointed_spec(session)
        key = spec.cache_key()
        images, _labels = sample_images(spec)
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path, count=2) as fleet:
                client.port = fleet.port
                await client.predict_async(spec, images[:2], task_id=0)
                await fleet.replicas[0].close()
                await client.predict_async(spec, images[:2], task_id=0)

        asyncio.run(main())
        with session._activate():
            fleet_events = [r["event"] for r in RunStore().provenance("gateway")]
            model_events = [r["event"] for r in RunStore().provenance(key)]
        assert fleet_events.count("replica-join") == 2
        assert "model-assign" in model_events
        assert "checkpoint-push" in model_events
        # Closing replica 0 surfaces as death-or-exit plus reassignment
        # of the models it held (when it held any).
        assert any(e in ("replica-dead", "replica-exit") for e in fleet_events)


class TestSessionGatewayBridge:
    def test_session_gateway_builds_a_client(self, session):
        client = session.gateway("127.0.0.1:7072")
        assert isinstance(client, GatewayClient)
        assert (client.host, client.port) == ("127.0.0.1", 7072)
        assert client.session is session

    def test_bare_host_uses_gateway_port(self, session):
        assert session.gateway("localhost").port == 7072


# ----------------------------------------------------------------------
# Wire protocol v2 — binary predict relay + sniff window
# ----------------------------------------------------------------------
class TestGatewayWireV2:
    def test_binary_predict_bitwise_equals_json(self, session, tmp_path):
        """Forced-binary and forced-JSON clients must get identical
        predictions, and binary frames must show up in the wire stats
        (proof the relay never fell back to JSON)."""
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            async with _Fleet(session, tmp_path, count=2) as fleet:
                binary = GatewayClient("127.0.0.1", session, attempts=8, wire="binary")
                jsonly = GatewayClient("127.0.0.1", session, attempts=8, wire="json")
                binary.port = jsonly.port = fleet.port
                via_binary = await binary.predict_async(spec, images, task_id=0)
                via_json = await jsonly.predict_async(spec, images, task_id=0)
                return via_binary, via_json, fleet.gateway.wire.snapshot()

        via_binary, via_json, wire = asyncio.run(main())
        assert np.array_equal(via_binary, direct)
        assert np.array_equal(via_json, direct)
        assert wire["frames_in"] >= 1 and wire["frames_out"] >= 1
        assert wire["lines_in"] >= 1 and wire["lines_out"] >= 1

    def test_v2_replica_negotiates_raw_checkpoint_push(self, session, tmp_path):
        """A replica advertising proto 2 gets its checkpoint as raw
        compressed bytes — and still serves bitwise-correct answers."""
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            gateway = GatewayApp(session, lease_timeout=30.0, retry_base_delay=0.005)
            replica_session = Session(cache_dir=tmp_path / "v2-replica")
            app = ReplicaApp(InferenceService(replica_session, max_delay_ms=1))
            host, port = await gateway.start()
            rhost, rport = await app.start()
            try:
                hello = await netio.request_async(
                    host, port,
                    {
                        "op": "hello", "name": "v2", "host": rhost, "port": rport,
                        "proto": netio.WIRE_VERSION,
                    },
                )
                assert hello["ok"] and hello["proto"] == netio.WIRE_VERSION
                client = GatewayClient("127.0.0.1", session, attempts=8, wire="binary")
                client.port = port
                served = await client.predict_async(spec, images, task_id=0)
                stats = await client.stats_async()
                return served, stats
            finally:
                await app.close()
                await gateway.close()

        served, stats = asyncio.run(main())
        assert np.array_equal(served, direct)
        assert stats["traffic"]["checkpoint_pushes"] == 1
        assert stats["replicas"][0]["proto"] == netio.WIRE_VERSION

    def test_spec_spanning_sniff_window_still_routes(self, session, tmp_path):
        """A JSON predict whose wire spec overflows the sniff window
        must fall back to the full parse and route correctly."""
        from repro.gateway.gateway import _PREDICT_PREFIX

        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            gateway = GatewayApp(
                session,
                lease_timeout=30.0,
                retry_base_delay=0.005,
                sniff_bytes=len(_PREDICT_PREFIX) + 2,  # nothing real fits
            )
            replica_session = Session(cache_dir=tmp_path / "sniff-replica")
            app = ReplicaApp(InferenceService(replica_session, max_delay_ms=1))
            host, port = await gateway.start()
            rhost, rport = await app.start()
            try:
                await netio.request_async(
                    host, port,
                    {"op": "hello", "name": "s", "host": rhost, "port": rport},
                )
                client = GatewayClient("127.0.0.1", session, attempts=8, wire="json")
                client.port = port
                served = await client.predict_async(spec, images, task_id=0)
                stats = await client.stats_async()
                return served, stats
            finally:
                await app.close()
                await gateway.close()

        served, stats = asyncio.run(main())
        assert np.array_equal(served, direct)
        assert stats["traffic"]["forwarded"] == 1

    def test_sniff_bytes_floor_enforced(self, session):
        with pytest.raises(ValueError, match="sniff_bytes"):
            GatewayApp(session, sniff_bytes=4)

    def test_sniff_model_unit(self, session):
        """Canonical-in-window sniffs; spanning or non-canonical → None."""
        import json as _json

        app = GatewayApp(session, sniff_bytes=64)
        wire = {"method": "FineTune"}
        canonical = (
            b'{"op": "predict", "model": ' + _json.dumps(wire).encode() + b", ..."
        )
        assert app._sniff_model(canonical) == wire
        # Reordered keys: not canonical, no sniff.
        assert app._sniff_model(b'{"model": {}, "op": "predict"}') is None
        # Spec bigger than the window: spans → None (full-parse fallback).
        huge = {"method": "FineTune", "pad": "x" * 200}
        spanning = b'{"op": "predict", "model": ' + _json.dumps(huge).encode()
        assert app._sniff_model(spanning) is None
