"""Tests for :mod:`repro.netio` — the shared wire plumbing.

Focus: the primitives the gateway's router leans on.  The retry helper
must retry exactly the transient failure shapes (busy answers, dead
sockets) with the documented backoff schedule, and the shed-exemption
path must keep its two edge contracts: only tiny lines are sniffed,
and a recovered gate admits normally again.
"""

import asyncio
import json

import pytest

from repro import netio


class TestBackoffDelays:
    def test_exponential_schedule(self):
        assert list(netio.backoff_delays(5, base=0.1, factor=2.0, cap=10.0)) == [
            0.1, 0.2, 0.4, 0.8,
        ]

    def test_cap_clamps(self):
        assert list(netio.backoff_delays(6, base=1.0, factor=4.0, cap=5.0)) == [
            1.0, 4.0, 5.0, 5.0, 5.0,
        ]

    def test_one_attempt_means_no_delays(self):
        assert list(netio.backoff_delays(1)) == []

    def test_rejects_nonpositive_attempts(self):
        with pytest.raises(ValueError):
            list(netio.backoff_delays(0))


class _OpServer:
    """A tiny dialect server with a scriptable dispatch."""

    def __init__(self, dispatch, *, gate=None, shed_exempt=None):
        self.dispatch = dispatch
        self.gate = gate
        self.shed_exempt = shed_exempt
        self.server = None

    async def __aenter__(self):
        async def handle(reader, writer):
            await netio.serve_connection(
                reader,
                writer,
                self.dispatch,
                gate=self.gate,
                shed_exempt=self.shed_exempt,
            )

        self.server = await asyncio.start_server(
            handle, "127.0.0.1", 0, limit=netio.STREAM_LIMIT
        )
        return self.server.sockets[0].getsockname()[1]

    async def __aexit__(self, *exc):
        self.server.close()
        await self.server.wait_closed()


class TestRequestWithRetry:
    def test_busy_then_recover_returns_the_good_answer(self):
        """The gateway-router shape: shed twice, then capacity frees."""
        calls = []

        async def dispatch(request):
            calls.append(request.payload)
            if len(calls) <= 2:
                return dict(netio.BUSY)
            return {"ok": True, "n": len(calls)}

        async def scenario():
            async with _OpServer(dispatch) as port:
                return await netio.request_with_retry(
                    "127.0.0.1", port, {"op": "x"}, attempts=5, base_delay=0.001
                )

        answer = asyncio.run(scenario())
        assert answer == {"ok": True, "n": 3}
        assert len(calls) == 3

    def test_exhausted_attempts_return_the_last_busy_answer(self):
        async def dispatch(request):
            return dict(netio.BUSY)

        async def scenario():
            async with _OpServer(dispatch) as port:
                return await netio.request_with_retry(
                    "127.0.0.1", port, {"op": "x"}, attempts=3, base_delay=0.001
                )

        answer = asyncio.run(scenario())
        assert answer == {"ok": False, "error": "busy"}

    def test_non_busy_errors_are_not_retried(self):
        calls = []

        async def dispatch(request):
            calls.append(1)
            return {"ok": False, "error": "unknown op 'x'"}

        async def scenario():
            async with _OpServer(dispatch) as port:
                return await netio.request_with_retry(
                    "127.0.0.1", port, {"op": "x"}, attempts=5, base_delay=0.001
                )

        answer = asyncio.run(scenario())
        assert answer["error"] == "unknown op 'x'"
        assert len(calls) == 1

    def test_connection_refused_raises_after_attempts(self):
        async def scenario():
            # Bind-then-close guarantees a refusing port.
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            await netio.request_with_retry(
                "127.0.0.1", port, {"op": "x"}, attempts=3, base_delay=0.001
            )

        with pytest.raises(ConnectionError, match="after 3 attempts"):
            asyncio.run(scenario())

    def test_dead_socket_then_recover(self):
        """A server that comes up mid-retry is eventually reached."""

        async def scenario():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            async def dispatch(request):
                return {"ok": True, "revived": True}

            async def start_late():
                await asyncio.sleep(0.05)
                async def handle(reader, writer):
                    await netio.serve_connection(reader, writer, dispatch)
                return await asyncio.start_server(
                    handle, "127.0.0.1", port, limit=netio.STREAM_LIMIT
                )

            starter = asyncio.ensure_future(start_late())
            try:
                answer = await netio.request_with_retry(
                    "127.0.0.1", port, {"op": "x"}, attempts=8, base_delay=0.02
                )
            finally:
                server = await starter
                server.close()
                await server.wait_closed()
            return answer

        assert asyncio.run(scenario())["revived"] is True


class TestShedExemption:
    """InflightGate + shed_exempt edge cases on a saturated server."""

    def _saturated_server(self, release: "asyncio.Event", exempt_ops=("stats",)):
        gate = netio.InflightGate(1)

        async def dispatch(request):
            payload = request.payload
            if payload.get("op") == "slow":
                await release.wait()
                return {"ok": True, "slow": True}
            return {"ok": True, "op": payload.get("op")}

        return gate, _OpServer(
            dispatch, gate=gate, shed_exempt=netio.shed_exempt_ops(*exempt_ops)
        )

    def test_tiny_exempt_line_answers_while_saturated(self):
        async def scenario():
            release = asyncio.Event()
            gate, server = self._saturated_server(release)
            async with server as port:
                slow = asyncio.ensure_future(
                    netio.request_async("127.0.0.1", port, {"op": "slow"})
                )
                while gate.inflight == 0:
                    await asyncio.sleep(0.001)
                exempt = await netio.request_async("127.0.0.1", port, {"op": "stats"})
                release.set()
                await slow
                return exempt, gate.stats()

        exempt, stats = asyncio.run(scenario())
        assert exempt == {"ok": True, "op": "stats"}
        # The exempt request neither took a slot nor counted a shed.
        assert stats["rejected"] == 0
        assert stats["admitted"] == 1

    def test_oversized_line_is_not_sniffed_even_for_an_exempt_op(self):
        """Padding a stats request past the sniff cap forfeits exemption:
        O(1) admission must never parse a megabyte to find the op."""

        async def scenario():
            release = asyncio.Event()
            gate, server = self._saturated_server(release)
            async with server as port:
                slow = asyncio.ensure_future(
                    netio.request_async("127.0.0.1", port, {"op": "slow"})
                )
                while gate.inflight == 0:
                    await asyncio.sleep(0.001)
                padded = {"op": "stats", "pad": "x" * 2048}
                answer = await netio.request_async("127.0.0.1", port, padded)
                release.set()
                await slow
                return answer, gate.stats()

        answer, stats = asyncio.run(scenario())
        assert answer == {"ok": False, "error": "busy"}
        assert stats["rejected"] == 1

    def test_non_json_tiny_line_is_refused_not_crashed(self):
        async def scenario():
            release = asyncio.Event()
            gate, server = self._saturated_server(release)
            async with server as port:
                slow = asyncio.ensure_future(
                    netio.request_async("127.0.0.1", port, {"op": "slow"})
                )
                while gate.inflight == 0:
                    await asyncio.sleep(0.001)
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                release.set()
                await slow
                return json.loads(line)

        assert asyncio.run(scenario()) == {"ok": False, "error": "busy"}

    def test_busy_then_recover_admits_normally_again(self):
        """After the slot frees, the same non-exempt op is admitted —
        saturation is a state, not a latch."""

        async def scenario():
            release = asyncio.Event()
            gate, server = self._saturated_server(release)
            async with server as port:
                slow = asyncio.ensure_future(
                    netio.request_async("127.0.0.1", port, {"op": "slow"})
                )
                while gate.inflight == 0:
                    await asyncio.sleep(0.001)
                shed = await netio.request_async("127.0.0.1", port, {"op": "work"})
                release.set()
                await slow
                recovered = await netio.request_async("127.0.0.1", port, {"op": "work"})
                return shed, recovered, gate.stats()

        shed, recovered, stats = asyncio.run(scenario())
        assert shed == {"ok": False, "error": "busy"}
        assert recovered == {"ok": True, "op": "work"}
        assert stats["rejected"] == 1
        assert stats["admitted"] == 2
        assert stats["inflight"] == 0


class TestInflightGateEdges:
    def test_zero_or_none_limit_disables_but_counts(self):
        for limit in (0, None):
            gate = netio.InflightGate(limit)
            assert not gate.saturated
            for _ in range(100):
                assert gate.try_acquire()
            assert gate.stats()["admitted"] == 100

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            netio.InflightGate(1).release()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            netio.InflightGate(-1)
