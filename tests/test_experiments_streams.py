"""Tests for the experiment-to-stream mapping (column -> scenario registry)."""

import pytest

from repro.engine import SCENARIOS
from repro.experiments import get_profile
from repro.experiments.table1 import COLUMN_SCENARIOS, TABLE1_COLUMNS

SMOKE = get_profile("smoke")


def _column_stream(column, profile):
    return SCENARIOS.get(COLUMN_SCENARIOS[column]).build(profile, seed=profile.seed)


class TestTable1StreamMapping:
    def test_digit_columns_build_digit_streams(self):
        stream = _column_stream("MN->US", SMOKE)
        assert stream.source_domain == "mnist"
        assert stream.target_domain == "usps"
        assert len(stream) == 5

    def test_reverse_digit_direction(self):
        stream = _column_stream("US->MN", SMOKE)
        assert stream.source_domain == "usps"

    def test_visda_column(self):
        stream = _column_stream("VisDA-2017", SMOKE)
        assert len(stream) == 4
        assert stream.classes_per_task == 3

    @pytest.mark.parametrize("column", ["A->D", "D->W", "W->A"])
    def test_office_columns(self, column):
        stream = _column_stream(column, SMOKE)
        assert len(stream) == 5
        assert stream.classes_per_task == 6
        assert stream.total_classes == 30

    def test_every_column_has_a_registered_scenario(self):
        for column in TABLE1_COLUMNS:
            assert COLUMN_SCENARIOS[column] in SCENARIOS

    def test_all_columns_buildable(self):
        for column in TABLE1_COLUMNS:
            stream = _column_stream(column, SMOKE)
            stream.validate()

    def test_profile_controls_sample_counts(self):
        stream = _column_stream("MN->US", SMOKE)
        per_task = SMOKE.samples_per_class * stream.classes_per_task
        assert len(stream[0].source_train) == per_task
        assert len(stream[0].target_test) == (
            SMOKE.test_samples_per_class * stream.classes_per_task
        )
