"""Tests for the unified experiment engine (registry, cache, executor).

Coverage contract from the engine's design:

* every registered method name constructs a working instance on the
  smoke profile;
* every registered scenario yields a valid task stream;
* a cache round-trip returns bit-identical results;
* a two-seed parallel run matches the serial run seed-for-seed;
* a new scenario is usable by registering one factory, with no edits
  to any table module.
"""

import numpy as np
import pytest

from repro.continual import ContinualMethod, Scenario
from repro.data.synthetic import mnist_usps
from repro.engine import (
    METHODS,
    SCENARIOS,
    RunSpec,
    cache,
    derive_seeds,
    get_profile,
    register_scenario,
    run_one,
    run_pair_cells,
    run_seed_sweep,
    run_specs,
    spec_for,
)

SMOKE = get_profile("smoke")

#: Tiny workload shared by the execution tests: 5-task digit stream at
#: minimal size, 2-epoch training.
TINY_OVERRIDES = dict(
    samples_per_class=4, test_samples_per_class=2, epochs=2, warmup_epochs=1
)


@register_scenario("_test/tiny_digits", description="truncated 2-task digit stream")
def _tiny_digits(profile, seed, **params):
    stream = mnist_usps(
        "mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=seed
    )
    stream.tasks = stream.tasks[:2]
    return stream


def tiny_spec(method: str = "FineTune", **kwargs) -> RunSpec:
    return RunSpec(
        method=method,
        scenario="_test/tiny_digits",
        profile="smoke",
        profile_overrides=dict(TINY_OVERRIDES),
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))


class TestMethodRegistry:
    def test_expected_method_set(self):
        assert "CDCL" in METHODS
        assert "TVT" in METHODS
        assert len(METHODS) >= 12  # CDCL + the 11 baselines

    @pytest.mark.parametrize("name", METHODS.names())
    def test_every_method_constructs(self, name):
        spec = METHODS.get(name)
        method = spec.factory(SMOKE, 1, 16, 0, None)
        assert isinstance(method, ContinualMethod)
        assert method.name == name

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            METHODS.get("iCaRL")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            METHODS.register(METHODS.get("CDCL"))


class TestScenarioRegistry:
    def test_papers_benchmarks_registered(self):
        for name in (
            "office31/A->W",
            "digits/mnist->usps",
            "visda2017",
            "office_home/Ar->Cl",
            "domainnet/clp->skt",
            "office_home_dil",
            "digits_drift",
        ):
            assert name in SCENARIOS

    # domainnet_full/* are paper-scale and refuse to build without
    # REPRO_FULL=1; their guard and geometry have dedicated tests below.
    @pytest.mark.parametrize(
        "name",
        [n for n in SCENARIOS.names() if not n.startswith("domainnet_full/")],
    )
    def test_every_scenario_yields_valid_stream(self, name):
        stream = SCENARIOS.get(name).build(
            SMOKE, seed=0, samples_per_class=2, test_samples_per_class=2
        )
        assert len(stream) > 0
        for position, task in enumerate(stream):
            assert task.task_id == position
            assert task.num_classes == stream.classes_per_task
            image = task.source_train[0][0]
            assert image.ndim == 3  # (C, H, W)
            assert len(task.target_test) > 0

    def test_drift_scenario_gap_widens(self):
        stream = SCENARIOS.get("digits_drift").build(
            SMOKE, seed=0, samples_per_class=2, test_samples_per_class=2
        )
        assert len(stream) == 5
        assert "drift" in stream.name

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            SCENARIOS.get("imagenet")


class TestPaperScaleScenarios:
    """domainnet_full/*: the real 345-class geometry, gated on REPRO_FULL."""

    def test_all_thirty_pairs_registered(self):
        full = [n for n in SCENARIOS.names() if n.startswith("domainnet_full/")]
        assert len(full) == 30  # 6 domains, ordered pairs
        assert "domainnet_full/clp->skt" in SCENARIOS

    def test_refuses_to_build_without_repro_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        with pytest.raises(ValueError, match="REPRO_FULL"):
            SCENARIOS.get("domainnet_full/clp->skt").build(SMOKE, seed=0)

    def test_paper_geometry_under_repro_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        stream = SCENARIOS.get("domainnet_full/rel->qdr").build(
            SMOKE, seed=0, samples_per_class=1, test_samples_per_class=1
        )
        assert len(stream) == 15  # 15 tasks x 23 classes = 345
        assert stream.classes_per_task == 23
        assert {c for task in stream for c in task.classes} == set(range(345))


class TestRunSpecCache:
    def test_key_is_deterministic(self):
        assert tiny_spec().cache_key() == tiny_spec().cache_key()

    def test_key_distinguishes_fields(self):
        base = tiny_spec()
        assert base.cache_key() != tiny_spec(seed=1).cache_key()
        assert base.cache_key() != tiny_spec(method="DER").cache_key()
        assert (
            base.cache_key()
            != tiny_spec(method_overrides={"lr": 1e-4}).cache_key()
        )

    def test_round_trip_is_bit_identical(self):
        spec = tiny_spec()
        cold = run_one(spec, use_cache=True)
        assert not cold.cached
        warm = run_one(spec, use_cache=True)
        assert warm.cached
        for scenario in (Scenario.TIL, Scenario.CIL):
            np.testing.assert_array_equal(
                cold.results[scenario].r_matrix.values,
                warm.results[scenario].r_matrix.values,
            )
            assert cold.results[scenario].acc == warm.results[scenario].acc
            assert cold.results[scenario].fgt == warm.results[scenario].fgt

    def test_no_cache_recomputes(self):
        spec = tiny_spec()
        run_one(spec, use_cache=True)
        again = run_one(spec, use_cache=False)
        assert not again.cached

    def test_env_var_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        spec = tiny_spec()
        run_one(spec, use_cache=True)
        assert run_one(spec, use_cache=True).cached is False

    def test_corrupt_entry_is_a_miss(self):
        spec = tiny_spec()
        run_one(spec, use_cache=True)
        path = cache.cache_dir() / f"{spec.cache_key()}.pkl"
        path.write_bytes(b"not a pickle")
        result = run_one(spec, use_cache=True)
        assert not result.cached  # recomputed, then re-stored
        assert run_one(spec, use_cache=True).cached


class TestParallelExecution:
    def test_two_seed_parallel_matches_serial(self):
        spec = tiny_spec()
        serial = run_seed_sweep(spec, seeds=(0, 1), jobs=1, use_cache=False)
        parallel = run_seed_sweep(spec, seeds=(0, 1), jobs=2, use_cache=False)
        for scenario in (Scenario.TIL, Scenario.CIL):
            assert serial.acc[scenario].values == parallel.acc[scenario].values
            assert serial.fgt[scenario].values == parallel.fgt[scenario].values

    def test_results_keep_input_order(self):
        specs = [tiny_spec(seed=s) for s in (3, 1, 2)]
        results = run_specs(specs, jobs=2, use_cache=False)
        assert [r.seed for r in results] == [3, 1, 2]

    def test_parallel_run_warms_shared_cache(self):
        spec = tiny_spec()
        run_seed_sweep(spec, seeds=(0, 1), jobs=2, use_cache=True)
        warm = run_specs([tiny_spec(seed=0), tiny_spec(seed=1)], use_cache=True)
        assert all(cell.cached for cell in warm)

    def test_empty_seeds_raise(self):
        with pytest.raises(ValueError):
            run_seed_sweep(tiny_spec(), seeds=())

    def test_derive_seeds_deterministic_and_distinct(self):
        seeds = derive_seeds(7, 4)
        assert seeds == derive_seeds(7, 4)
        assert len(set(seeds)) == 4
        assert seeds != derive_seeds(8, 4)


class TestPairAssembly:
    def test_pair_cells_include_tvt(self):
        pair = run_pair_cells(
            "_test/tiny_digits",
            methods=("FineTune",),
            profile=get_profile("smoke", **TINY_OVERRIDES),
            include_tvt=True,
        )
        assert 0.0 <= pair.acc("FineTune", Scenario.TIL) <= 1.0
        assert Scenario.TIL in pair.tvt_acc

    def test_new_scenario_needs_no_table_edit(self):
        """Registering one factory makes a scenario runnable end-to-end."""

        @register_scenario("_test/registered_late", description="added in-test")
        def _late(profile, seed, **params):
            stream = mnist_usps(
                "usps->mnist", samples_per_class=4, test_samples_per_class=2, rng=seed
            )
            stream.tasks = stream.tasks[:2]
            return stream

        cell = run_one(
            spec_for(
                "FineTune",
                "_test/registered_late",
                get_profile("smoke", **TINY_OVERRIDES),
            ),
            use_cache=False,
        )
        assert Scenario.CIL in cell.results

    def test_static_method_reports_static_acc(self):
        cell = run_one(tiny_spec(method="TVT"), use_cache=False)
        assert cell.is_static
        assert set(cell.static_acc) == {Scenario.TIL, Scenario.CIL}

    def test_multiseed_supports_static_methods(self):
        """TVT is listed by list-methods, so the seed sweep must take it."""
        result = run_seed_sweep(tiny_spec(method="TVT"), seeds=(0, 1), use_cache=False)
        assert result.acc[Scenario.TIL].n == 2
        assert result.fgt[Scenario.TIL].values == [0.0, 0.0]  # static: no forgetting

    def test_custom_named_profile_round_trips(self):
        """Profiles with unregistered names must survive the spec round-trip."""
        from dataclasses import replace

        custom = replace(get_profile("smoke", **TINY_OVERRIDES), name="mine")
        spec = spec_for("FineTune", "_test/tiny_digits", custom)
        resolved = spec.resolved_profile()
        assert resolved.name == "mine"
        assert resolved.samples_per_class == TINY_OVERRIDES["samples_per_class"]
        cell = run_one(spec, use_cache=False)
        assert Scenario.TIL in cell.results


class TestEvaluatorBatching:
    def test_predict_multi_matches_per_scenario_predicts(self):
        """The shared-forward fast path must agree with predict/predict_global."""
        from repro.continual import run_continual_multi
        from repro.core import CDCLConfig, CDCLTrainer

        stream = _tiny_digits(SMOKE, seed=0)
        trainer = CDCLTrainer(
            CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0
        )
        run_continual_multi(trainer, stream, [Scenario.TIL])
        images = stream[0].target_test.arrays()[0]
        multi = trainer.predict_multi(images, 0, [Scenario.TIL, Scenario.CIL])
        np.testing.assert_array_equal(
            multi[Scenario.TIL], trainer.predict(images, 0, Scenario.TIL)
        )
        np.testing.assert_array_equal(
            multi[Scenario.CIL], trainer.predict_global(images, Scenario.CIL)
        )
