"""Tests for dataset abstractions."""

import numpy as np
import pytest

from repro.data import ArrayDataset, ConcatDataset, DataLoader, Subset, paired_batches


def make_dataset(n=10, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.normal(size=(n, 1, 4, 4)), rng.integers(0, classes, size=n))


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = make_dataset(5)
        assert len(ds) == 5
        x, y = ds[0]
        assert x.shape == (1, 4, 4)
        assert isinstance(y, int)

    def test_rejects_non_4d_images(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 4, 4)), np.zeros(3))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 4, 4)), np.zeros(2))

    def test_arrays_roundtrip(self):
        ds = make_dataset(6)
        x, y = ds.arrays()
        assert x.shape == (6, 1, 4, 4)
        assert y.shape == (6,)

    def test_classes_excludes_unlabeled(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, -1, 1]))
        assert ds.classes.tolist() == [0, 1]

    def test_filter_classes(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, 2, 1]))
        sub = ds.filter_classes([1])
        assert len(sub) == 2
        assert set(sub.labels.tolist()) == {1}

    def test_relabel(self):
        ds = ArrayDataset(np.zeros((3, 1, 2, 2)), np.array([5, 7, 5]))
        out = ds.relabel({5: 0, 7: 1})
        assert out.labels.tolist() == [0, 1, 0]

    def test_relabel_unknown_becomes_unlabeled(self):
        ds = ArrayDataset(np.zeros((2, 1, 2, 2)), np.array([5, 9]))
        out = ds.relabel({5: 0})
        assert out.labels.tolist() == [0, -1]


class TestSubsetConcat:
    def test_subset(self):
        ds = make_dataset(10)
        sub = Subset(ds, [2, 4])
        assert len(sub) == 2
        assert np.allclose(sub[0][0], ds[2][0])

    def test_concat(self):
        a, b = make_dataset(3, seed=1), make_dataset(4, seed=2)
        cat = ConcatDataset([a, b])
        assert len(cat) == 7
        assert np.allclose(cat[0][0], a[0][0])
        assert np.allclose(cat[3][0], b[0][0])
        assert np.allclose(cat[-1][0], b[3][0])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            ConcatDataset([])


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(make_dataset(10), batch_size=4)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [4, 4, 2]
        assert len(loader) == 3

    def test_drop_last(self):
        loader = DataLoader(make_dataset(10), batch_size=4, drop_last=True)
        assert [len(b[0]) for b in loader] == [4, 4]
        assert len(loader) == 2

    def test_shuffle_deterministic_with_seed(self):
        ds = make_dataset(20)
        a = [y for _x, y in DataLoader(ds, batch_size=5, shuffle=True, rng=7)]
        b = [y for _x, y in DataLoader(ds, batch_size=5, shuffle=True, rng=7)]
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_shuffle_changes_order_between_epochs(self):
        ds = make_dataset(50)
        loader = DataLoader(ds, batch_size=50, shuffle=True, rng=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        ds = make_dataset(6)
        loader = DataLoader(ds, batch_size=6)
        _x, y = next(iter(loader))
        assert np.array_equal(y, ds.labels)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(4), batch_size=0)


class TestPairedBatches:
    def test_cycles_shorter_loader(self):
        source = DataLoader(make_dataset(12, seed=1), batch_size=4)
        target = DataLoader(make_dataset(4, seed=2), batch_size=4)
        triples = list(paired_batches(source, target))
        assert len(triples) == 3  # driven by the longer loader
        for xs, ys, xt in triples:
            assert len(xs) == len(ys)
            assert xt.shape[0] > 0

    def test_target_longer(self):
        source = DataLoader(make_dataset(4, seed=1), batch_size=4)
        target = DataLoader(make_dataset(12, seed=2), batch_size=4)
        assert len(list(paired_batches(source, target))) == 3
