"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import mnist_usps


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_stream():
    """A 2-task digit stream small enough for per-test training."""
    stream = mnist_usps(
        "mnist->usps", samples_per_class=8, test_samples_per_class=4, rng=0
    )
    stream.tasks = stream.tasks[:2]
    return stream


@pytest.fixture(scope="session")
def digit_stream_3tasks():
    stream = mnist_usps(
        "mnist->usps", samples_per_class=8, test_samples_per_class=4, rng=1
    )
    stream.tasks = stream.tasks[:3]
    return stream
