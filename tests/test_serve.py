"""Tests for :mod:`repro.serve` — batched inference over checkpoints.

Contract: concurrent ``predict`` calls are micro-batched into shared
``predict_multi`` forwards whose outputs are bitwise-identical to a
direct call; the model pool LRU-bounds resident models and pins their
cache entries so disk eviction cannot delete a checkpoint a live
service holds; a missing checkpoint fails cleanly, never silently.
"""

import asyncio

import numpy as np
import pytest

from repro.api import Session
from repro.continual import Scenario
from repro.data.synthetic import mnist_usps
from repro.engine import cache
from repro.engine.registry import SCENARIOS, register_scenario
from repro.serve import (
    CheckpointUnavailable,
    InferenceService,
    ModelPool,
    ServeApp,
    request_async,
)

TINY = dict(samples_per_class=4, test_samples_per_class=8, epochs=2, warmup_epochs=1)

if "_test/serve_digits" not in SCENARIOS:

    @register_scenario("_test/serve_digits", description="2-task stream (serve tests)")
    def _serve_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps",
            samples_per_class=4,
            test_samples_per_class=8,
            rng=seed,
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))
    cache.reset_pins()  # pins are process-global; isolate each test
    yield
    cache.reset_pins()


@pytest.fixture()
def session():
    return Session()


def checkpointed_spec(session, method="FineTune", seed=0):
    handle = (
        session.run(method)
        .on("_test/serve_digits")
        .profile("smoke", **TINY)
        .seed(seed)
        .checkpoint()
        .start()
    )
    spec = handle.specs[0]
    handle.release()  # tests drive pinning through the pool, not the handle
    return spec


def sample_images(spec, task: int = 0):
    stream = SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)
    return stream[task].target_test.arrays()


class TestModelPool:
    def test_load_once_then_hits(self, session):
        spec = checkpointed_spec(session)
        pool = ModelPool(session, capacity=2)
        first = pool.get(spec)
        second = pool.get(spec)
        assert first is second
        assert pool.stats()["loads"] == 1
        assert pool.stats()["hits"] == 1

    def test_missing_checkpoint_fails_cleanly(self, session):
        spec = session.spec("FineTune", "_test/serve_digits", profile_overrides=TINY)
        with pytest.raises(CheckpointUnavailable, match="checkpoint"):
            ModelPool(session).get(spec)

    def test_lru_bounds_resident_models_and_pins(self, session):
        specs = [checkpointed_spec(session, seed=seed) for seed in (0, 1)]
        pool = ModelPool(session, capacity=1)
        pool.get(specs[0])
        assert specs[0].cache_key() in cache.pinned()
        pool.get(specs[1])  # evicts the first resident model
        assert len(pool) == 1
        assert specs[0].cache_key() not in cache.pinned()
        assert specs[1].cache_key() in cache.pinned()
        assert pool.stats()["evictions"] == 1
        pool.close()
        assert not cache.pinned()

    def test_rejects_nonpositive_capacity(self, session):
        with pytest.raises(ValueError, match="capacity"):
            ModelPool(session, capacity=0)


class TestServeVsCacheEviction:
    """The ISSUE's interaction contract: pin while held, fail cleanly after."""

    def test_disk_eviction_skips_entries_held_by_the_pool(self, session):
        spec = checkpointed_spec(session)
        pool = ModelPool(session)
        pool.get(spec)
        victims = cache.evict(max_entries=0)  # full LRU sweep
        assert spec.cache_key() not in [v.key for v in victims]
        assert session.has_checkpoint(spec)
        # still servable after the sweep
        assert pool.get(spec).tasks_seen == 2

    def test_eviction_after_release_then_reload_fails_cleanly(self, session):
        spec = checkpointed_spec(session)
        pool = ModelPool(session)
        pool.get(spec)
        pool.close()  # release the pin
        cache.evict(max_entries=0)
        assert not session.has_checkpoint(spec)
        with pytest.raises(CheckpointUnavailable, match="checkpoint"):
            pool.get(spec)

    def test_checkpoint_only_entry_pins_too(self, session):
        """A corrupt result repaired into a checkpoint-only entry still
        serves, and serving pins it against eviction."""
        spec = checkpointed_spec(session)
        key = spec.cache_key()
        (cache.cache_dir() / f"{key}.pkl").write_bytes(b"garbage")
        cache.verify(repair=True)  # drops the result, keeps the checkpoint
        pool = ModelPool(session)
        model = pool.get(spec)  # load_checkpoint does not need the result
        assert model.tasks_seen == 2
        cache.evict(max_entries=0)
        assert session.has_checkpoint(spec)
        pool.close()


class TestMicroBatching:
    def test_concurrent_predicts_match_predict_multi_bitwise(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            service = InferenceService(session, max_batch=64, max_delay_ms=100)
            served = await asyncio.gather(
                *(service.predict(spec, image, task_id=0) for image in images)
            )
            stats = service.stats()
            await service.close()
            return np.array(served), stats

        served, stats = asyncio.run(main())
        assert np.array_equal(served, direct)
        assert stats["requests"] == len(images)
        # concurrent submissions coalesced into shared forwards
        assert stats["batches"] < len(images)

    def test_full_coalescing_with_wide_window(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            service = InferenceService(session, max_batch=64, max_delay_ms=250)
            await service.predict_many(spec, images, task_id=0)
            stats = service.stats()
            await service.close()
            return stats

        stats = asyncio.run(main())
        assert stats["batches"] == 1
        assert stats["largest_batch"] == len(images)

    def test_max_batch_splits_oversized_bursts(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            service = InferenceService(session, max_batch=4, max_delay_ms=100)
            served = await service.predict_many(spec, images, task_id=0)
            stats = service.stats()
            await service.close()
            return served, stats

        served, stats = asyncio.run(main())
        assert stats["largest_batch"] <= 4
        assert np.array_equal(served, direct)  # splitting is invisible

    def test_scenarios_and_tasks_get_separate_lanes(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec, task=1)

        async def main():
            service = InferenceService(session, max_delay_ms=50)
            til = await service.predict_many(
                spec, images, task_id=1, scenario="til"
            )
            cil = await service.predict_many(
                spec, images, task_id=1, scenario="cil"
            )
            lanes = service.stats()["lanes"]
            await service.close()
            return til, cil, lanes

        til, cil, lanes = asyncio.run(main())
        assert lanes == 2
        method = session.load_model(spec)
        expected = method.predict_multi(images, 1, [Scenario.TIL, Scenario.CIL])
        assert np.array_equal(til, expected[Scenario.TIL])
        assert np.array_equal(cil, expected[Scenario.CIL])

    def test_malformed_batch_fails_its_awaiters_but_lane_survives(self, session):
        """Mismatched shapes torn apart by np.stack must error every
        awaiter of that batch and leave the lane serving the next one."""
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        small = images[0][:, :8, :8]  # (1, 8, 8): stackable with nothing

        async def main():
            service = InferenceService(session, max_batch=8, max_delay_ms=100)
            outcomes = await asyncio.gather(
                service.predict(spec, images[0], task_id=0),
                service.predict(spec, small, task_id=0),
                return_exceptions=True,
            )
            # The poisoned batch failed cleanly...
            assert any(isinstance(o, RuntimeError) for o in outcomes)
            # ...and the same lane still answers fresh requests.
            follow_up = await service.predict(spec, images[1], task_id=0)
            await service.close()
            return follow_up

        follow_up = asyncio.run(main())
        direct = session.load_model(spec).predict_multi(
            images[1:2], 0, [Scenario.TIL]
        )[Scenario.TIL]
        assert follow_up == int(direct[0])

    def test_pool_eviction_prunes_the_models_lanes(self, session):
        """An LRU-evicted model must not stay resident via its lanes."""
        specs = [checkpointed_spec(session, seed=seed) for seed in (0, 1)]
        images, _labels = sample_images(specs[0])

        async def main():
            service = InferenceService(
                session,
                pool=ModelPool(session, capacity=1),
                max_delay_ms=50,
            )
            await service.predict(spec=specs[0], image=images[0], task_id=0)
            assert service.stats()["lanes"] == 1
            # Loading the second model evicts the first from the pool;
            # the next resolve drops the orphaned lane with it.
            await service.predict(spec=specs[1], image=images[0], task_id=0)
            lanes = {key[0] for key in service._lanes}
            await service.close()
            return lanes

        lanes = asyncio.run(main())
        assert lanes == {specs[1].cache_key()}

    def test_bad_task_id_is_rejected(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            service = InferenceService(session)
            try:
                with pytest.raises(ValueError, match="task_id"):
                    await service.predict(spec, images[0], task_id=99)
            finally:
                await service.close()

        asyncio.run(main())


class TestTcpFrontEnd:
    def test_round_trip_info_predict_stats(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            app = ServeApp(InferenceService(session, max_delay_ms=50), spec)
            host, port = await app.start()
            info = await request_async(host, port, {"op": "info"})
            responses = await asyncio.gather(
                *(
                    request_async(
                        host,
                        port,
                        {"op": "predict", "images": image.tolist(), "task_id": 0},
                    )
                    for image in images
                )
            )
            batch = await request_async(
                host,
                port,
                {"op": "predict", "images": images.tolist(), "task_id": 0},
            )
            unknown = await request_async(host, port, {"op": "nonsense"})
            malformed = await request_async(
                host, port, {"op": "predict", "images": [[1.0]]}
            )
            await app.close()
            return info, responses, batch, unknown, malformed

        info, responses, batch, unknown, malformed = asyncio.run(main())
        assert info["ok"] and info["model"]["method"] == "FineTune"
        assert info["model"]["tasks_seen"] == 2
        served = np.array([r["predictions"][0] for r in responses])
        assert np.array_equal(served, direct)
        assert batch["ok"] and np.array_equal(np.array(batch["predictions"]), direct)
        assert not unknown["ok"] and "unknown op" in unknown["error"]
        assert not malformed["ok"]

    def test_startup_fails_fast_without_checkpoint(self, session):
        spec = session.spec("FineTune", "_test/serve_digits", profile_overrides=TINY)

        async def main():
            app = ServeApp(InferenceService(session), spec)
            with pytest.raises(CheckpointUnavailable):
                await app.start()

        asyncio.run(main())

    def test_wire_spec_predict_on_specless_app(self, session):
        """A spec-less app serves any cell named by a wire-form spec —
        the gateway-replica mode — bitwise-equal to the direct call."""
        from repro.cluster.protocol import encode_spec

        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]

        async def main():
            app = ServeApp(InferenceService(session, max_delay_ms=1))
            host, port = await app.start()
            with session._activate():
                wire = encode_spec(spec)
            good = await request_async(
                host,
                port,
                {
                    "op": "predict",
                    "model": wire,
                    "images": images.tolist(),
                    "task_id": 0,
                },
            )
            # Without a model field there is no default to fall back on.
            missing = await request_async(
                host, port, {"op": "predict", "images": images.tolist()}
            )
            info = await request_async(host, port, {"op": "info"})
            await app.close()
            return good, missing, info

        good, missing, info = asyncio.run(main())
        assert good["ok"] and np.array_equal(np.array(good["predictions"]), direct)
        assert not missing["ok"] and "no default model" in missing["error"]
        assert info["ok"] and info["model"] is None
        assert info["models"] == [spec.cache_key()]


class TestGracefulDrain:
    def test_drain_refuses_new_predicts_and_finishes_inflight(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            service = InferenceService(session, max_delay_ms=1)
            app = ServeApp(service, spec)
            host, port = await app.start()

            release = asyncio.Event()
            real_predict_many = service.predict_many

            async def stalled(*args, **kwargs):
                await release.wait()
                return await real_predict_many(*args, **kwargs)

            service.predict_many = stalled
            inflight = asyncio.ensure_future(
                request_async(
                    host,
                    port,
                    {"op": "predict", "images": images[:1].tolist(), "task_id": 0},
                )
            )
            while app.gate.inflight == 0:
                await asyncio.sleep(0.001)

            drain = await request_async(host, port, {"op": "drain"})
            refused = await request_async(
                host,
                port,
                {"op": "predict", "images": images[:1].tolist(), "task_id": 0},
            )
            stats = await request_async(host, port, {"op": "stats"})
            not_yet = await app.wait_drained(grace=0.05)
            release.set()
            finished = await inflight
            drained = await app.wait_drained(grace=5.0)
            await app.close()
            return drain, refused, stats, not_yet, finished, drained

        drain, refused, stats, not_yet, finished, drained = asyncio.run(main())
        # The drain op holds a slot of its own while answering, so the
        # reported inflight covers the stalled predict plus itself.
        assert drain["ok"] and drain["draining"] and drain["inflight"] >= 1
        assert refused == {"ok": False, "error": "draining"}
        assert stats["stats"]["transport"]["draining"] is True
        assert not_yet is False  # grace expired while the stall held
        assert finished["ok"]  # in-flight work completed despite the drain
        assert drained is True

    def test_drain_is_idempotent_and_shed_exempt(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            service = InferenceService(session, max_delay_ms=1)
            app = ServeApp(service, spec, max_inflight=1)
            host, port = await app.start()

            release = asyncio.Event()
            real_predict_many = service.predict_many

            async def stalled(*args, **kwargs):
                await release.wait()
                return await real_predict_many(*args, **kwargs)

            service.predict_many = stalled
            inflight = asyncio.ensure_future(
                request_async(
                    host,
                    port,
                    {"op": "predict", "images": images[:1].tolist(), "task_id": 0},
                )
            )
            while not app.gate.saturated:
                await asyncio.sleep(0.001)
            # The gate is full, yet the drain op still answers (exempt).
            first = await request_async(host, port, {"op": "drain"})
            second = await request_async(host, port, {"op": "drain"})
            release.set()
            finished = await inflight
            await app.close()
            return first, second, finished

        first, second, finished = asyncio.run(main())
        assert first["ok"] and first["draining"]
        assert second["ok"] and second["draining"]  # idempotent
        assert finished["ok"]


class TestHardening:
    """Backpressure and timeouts: the server sheds load, never queues forever."""

    def test_busy_beyond_max_inflight(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            app = ServeApp(
                InferenceService(session, max_delay_ms=5), spec, max_inflight=1
            )
            host, port = await app.start()
            release = asyncio.Event()

            async def stalled_predict(*args, **kwargs):
                await release.wait()
                return np.zeros(1, dtype=np.int64)

            app.service.predict_many = stalled_predict
            blocked = asyncio.ensure_future(
                request_async(
                    host,
                    port,
                    {"op": "predict", "images": images[0].tolist(), "task_id": 0},
                )
            )
            await asyncio.sleep(0.1)  # the slot is taken
            shed = await request_async(
                host,
                port,
                {"op": "predict", "images": images[0].tolist(), "task_id": 0},
            )
            # Observability must survive saturation: stats answers even
            # while every inflight slot is held (shed exemption).
            stats_during = await request_async(host, port, {"op": "stats"})
            release.set()
            first = await blocked
            stats = await request_async(host, port, {"op": "stats"})
            await app.close()
            return shed, stats_during, first, stats

        shed, stats_during, first, stats = asyncio.run(main())
        assert shed == {"ok": False, "error": "busy"}
        assert stats_during["ok"]
        assert stats_during["stats"]["transport"]["inflight"] == 1  # the held predict
        assert first["ok"]  # the admitted request completed normally
        # only the shed predict counts: the exempted stats call was
        # answered, so it is not a rejection
        assert stats["stats"]["transport"]["rejected"] == 1
        assert stats["stats"]["transport"]["limit"] == 1

    def test_per_request_timeout_frees_the_slot(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            app = ServeApp(
                InferenceService(session, max_delay_ms=5),
                spec,
                max_inflight=4,
                request_timeout=0.1,
            )
            host, port = await app.start()

            async def hung_predict(*args, **kwargs):
                await asyncio.sleep(30)

            app.service.predict_many = hung_predict
            timed_out = await request_async(
                host,
                port,
                {"op": "predict", "images": images[0].tolist(), "task_id": 0},
            )
            stats = await request_async(host, port, {"op": "stats"})
            await app.close()
            return timed_out, stats

        timed_out, stats = asyncio.run(main())
        assert not timed_out["ok"] and "timeout" in timed_out["error"]
        assert stats["stats"]["transport"]["timeouts"] == 1
        # The hung request's slot was released: only the stats request
        # itself is inflight while it reports.
        assert stats["stats"]["transport"]["inflight"] == 1

    def test_unbounded_by_default_request_still_answers(self, session):
        spec = checkpointed_spec(session)
        images, _labels = sample_images(spec)

        async def main():
            app = ServeApp(
                InferenceService(session, max_delay_ms=5), spec, max_inflight=0
            )
            host, port = await app.start()
            answer = await request_async(
                host,
                port,
                {"op": "predict", "images": images[0].tolist(), "task_id": 0},
            )
            await app.close()
            return answer

        assert asyncio.run(main())["ok"]


class TestSessionServeBridge:
    def test_session_serve_builds_a_service(self, session):
        service = session.serve(max_batch=8)
        assert isinstance(service, InferenceService)
        assert service.session is session
        assert service.max_batch == 8
