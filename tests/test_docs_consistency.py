"""Consistency checks between documentation and code.

Documentation that drifts from the code is worse than none; these tests
pin the claims README/DESIGN make to the actual public surface.
"""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme():
    return (REPO / "README.md").read_text()


@pytest.fixture(scope="module")
def design():
    return (REPO / "DESIGN.md").read_text()


class TestReadme:
    def test_quickstart_code_runs(self, readme):
        """The README quickstart snippet must execute verbatim."""
        import re

        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        # Shrink the workload so the doc test stays fast.
        snippet = snippet.replace(
            'mnist_usps("mnist->usps", rng=0)',
            'mnist_usps("mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=0)',
        ).replace(
            "CDCLConfig.small()", "CDCLConfig.fast(epochs=2, warmup_epochs=1)"
        )
        exec(compile(snippet, "<README quickstart>", "exec"), {})

    def test_all_examples_listed_exist(self, readme):
        for line in readme.splitlines():
            if line.strip().startswith("python examples/"):
                script = line.strip().split()[1]
                assert (REPO / script).exists(), f"README references missing {script}"

    def test_examples_dir_has_at_least_three(self):
        scripts = list((REPO / "examples").glob("*.py"))
        assert len(scripts) >= 3
        names = {s.name for s in scripts}
        assert "quickstart.py" in names


class TestDesign:
    def test_every_bench_target_exists(self, design):
        import re

        targets = set(re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`", design))
        assert targets, "DESIGN.md must map experiments to bench targets"
        for target in targets:
            assert (REPO / target).exists(), f"DESIGN.md references missing {target}"

    def test_packages_in_inventory_importable(self, design):
        import importlib
        import re

        packages = set(re.findall(r"`(repro\.[a-z_.]+)`", design))
        for name in packages:
            importlib.import_module(name)

    def test_experiments_md_exists_with_all_tables(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Table I ", "Table II ", "Table III ", "Table IV ", "Figure 2 "):
            assert artifact in text, f"EXPERIMENTS.md missing {artifact.strip()}"
