"""Tests for the Module/Parameter system and containers."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.nn import (
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
)


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=0)
        self.fc2 = Linear(8, 2, rng=1)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestParameterDiscovery:
    def test_named_parameters_paths(self):
        model = Toy()
        names = dict(model.named_parameters())
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "fc2.weight" in names
        assert "scale" in names

    def test_parameters_count(self):
        model = Toy()
        # fc1 w+b, fc2 w+b, scale
        assert len(model.parameters()) == 5

    def test_num_parameters(self):
        model = Toy()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.num_parameters() == expected

    def test_parameter_created_under_no_grad_still_trainable(self):
        with no_grad():
            p = Parameter(np.ones(3))
        assert p.requires_grad

    def test_attribute_error_for_unknown(self):
        model = Toy()
        with pytest.raises(AttributeError):
            model.nonexistent

    def test_delattr_removes_parameter(self):
        model = Toy()
        del model.scale
        assert "scale" not in dict(model.named_parameters())

    def test_modules_iteration(self):
        model = Toy()
        assert len(list(model.modules())) == 3  # self + 2 Linears
        assert len(list(model.children())) == 2


class TestModesAndGrads:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=0), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = Toy()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_freeze_unfreeze(self):
        model = Toy()
        model.freeze()
        assert all(not p.requires_grad for p in model.parameters())
        model.unfreeze()
        assert all(p.requires_grad for p in model.parameters())

    def test_frozen_params_get_no_grad(self):
        model = Toy()
        model.fc1.freeze()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert model.fc1.weight.grad is None
        assert model.fc2.weight.grad is not None


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        model = Toy()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_strict_missing_key_raises(self):
        model = Toy()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_ignores_extras(self):
        model = Toy()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = Toy()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestContainers:
    def test_sequential_forward_order(self):
        model = Sequential(Linear(3, 5, rng=0), ReLU(), Linear(5, 2, rng=1))
        out = model(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)

    def test_sequential_indexing_and_len(self):
        model = Sequential(ReLU(), ReLU())
        assert len(model) == 2
        assert isinstance(model[0], ReLU)

    def test_sequential_append(self):
        model = Sequential(ReLU())
        model.append(ReLU())
        assert len(model) == 2

    def test_module_list(self):
        heads = ModuleList(Linear(2, 2, rng=i) for i in range(3))
        assert len(heads) == 3
        assert heads[0] is not heads[1]
        assert heads[-1] is heads[2]
        # All parameters discovered through the container.
        assert len(list(heads.parameters())) == 6

    def test_module_dict(self):
        d = ModuleDict({"a": ReLU()})
        d["b"] = ReLU()
        assert "a" in d and "b" in d
        assert len(d) == 2
        assert set(d.keys()) == {"a", "b"}

    def test_repr_contains_children(self):
        model = Sequential(Linear(2, 2, rng=0))
        assert "Linear" in repr(model)
