"""Tests for the intra-task center-aware pseudo-labeling (Eqs. 17-19)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import assign_pseudo_labels, build_pair_set, compute_centroids
from repro.nn.functional import one_hot


def make_clusters(rng, k=3, n_per=20, d=8, spread=0.1):
    """Well-separated Gaussian clusters with known assignments."""
    centers = rng.normal(size=(k, d)) * 3
    features = np.concatenate(
        [centers[i] + spread * rng.normal(size=(n_per, d)) for i in range(k)]
    )
    labels = np.repeat(np.arange(k), n_per)
    return features, labels, centers


@pytest.fixture()
def rng():
    return np.random.default_rng(21)


class TestComputeCentroids:
    def test_hard_probs_give_class_means(self, rng):
        features, labels, _centers = make_clusters(rng)
        probs = one_hot(labels, 3)
        centroids = compute_centroids(features, probs)
        for k in range(3):
            assert np.allclose(centroids[k], features[labels == k].mean(axis=0))

    def test_uniform_probs_give_global_mean(self, rng):
        features = rng.normal(size=(10, 4))
        probs = np.full((10, 2), 0.5)
        centroids = compute_centroids(features, probs)
        assert np.allclose(centroids[0], features.mean(axis=0))
        assert np.allclose(centroids[0], centroids[1])

    def test_zero_probability_class_gets_zero_centroid(self, rng):
        features = rng.normal(size=(5, 4))
        probs = np.zeros((5, 2))
        probs[:, 0] = 1.0
        centroids = compute_centroids(features, probs)
        assert np.allclose(centroids[1], 0.0)

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            compute_centroids(rng.normal(size=(5, 4)), rng.random((4, 2)))

    def test_weighting_shifts_centroid_toward_confident_samples(self):
        features = np.array([[0.0], [10.0]])
        probs = np.array([[0.9], [0.1]])
        centroid = compute_centroids(features, probs)[0]
        assert centroid[0] < 5.0  # pulled toward the confident sample


class TestAssignPseudoLabels:
    def test_recovers_cluster_labels_euclidean(self, rng):
        features, labels, centers = make_clusters(rng)
        pseudo = assign_pseudo_labels(features, centers, distance="euclidean")
        assert (pseudo == labels).mean() == 1.0

    def test_recovers_cluster_labels_cosine(self, rng):
        features, labels, centers = make_clusters(rng, spread=0.05)
        pseudo = assign_pseudo_labels(features, centers, distance="cosine")
        assert (pseudo == labels).mean() > 0.95

    def test_unknown_distance_raises(self, rng):
        with pytest.raises(ValueError):
            assign_pseudo_labels(rng.normal(size=(3, 2)), rng.normal(size=(2, 2)), "manhattan")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 5))
    def test_property_labels_in_range(self, seed, k):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(20, 6))
        centroids = rng.normal(size=(k, 6))
        pseudo = assign_pseudo_labels(features, centroids, "euclidean")
        assert pseudo.min() >= 0 and pseudo.max() < k


class TestBuildPairSet:
    def test_pairs_match_labels(self, rng):
        source_features, source_labels, _ = make_clusters(rng, k=3, n_per=10)
        target_features, target_labels, _ = make_clusters(
            np.random.default_rng(22), k=3, n_per=8
        )
        # Use ground truth as pseudo-labels: every target should pair.
        pairs = build_pair_set(
            source_features, source_labels, target_features, target_labels
        )
        assert len(pairs) == len(target_features)
        assert np.all(source_labels[pairs.source_idx] == pairs.labels)
        assert np.all(pairs.labels == target_labels[pairs.target_idx])

    def test_pair_uses_nearest_same_class_source(self):
        source_features = np.array([[0.0, 1.0], [0.0, -1.0], [5.0, 0.0]])
        source_labels = np.array([0, 0, 1])
        target_features = np.array([[0.1, 0.9]])
        pseudo = np.array([0])
        pairs = build_pair_set(
            source_features, source_labels, target_features, pseudo, "euclidean"
        )
        assert pairs.source_idx[0] == 0  # nearest class-0 source

    def test_missing_class_targets_dropped(self, rng):
        source_features = rng.normal(size=(4, 3))
        source_labels = np.zeros(4, dtype=int)  # only class 0 in source
        target_features = rng.normal(size=(6, 3))
        pseudo = np.array([0, 0, 1, 1, 1, 0])  # class 1 has no source
        pairs = build_pair_set(source_features, source_labels, target_features, pseudo)
        assert len(pairs) == 3
        assert pairs.keep_ratio == 0.5

    def test_empty_target(self, rng):
        pairs = build_pair_set(
            rng.normal(size=(3, 2)),
            np.zeros(3, dtype=int),
            np.empty((0, 2)),
            np.empty(0, dtype=int),
        )
        assert len(pairs) == 0
        assert pairs.keep_ratio == 0.0

    def test_unknown_distance_raises(self, rng):
        with pytest.raises(ValueError):
            build_pair_set(
                rng.normal(size=(2, 2)),
                np.zeros(2, dtype=int),
                rng.normal(size=(2, 2)),
                np.zeros(2, dtype=int),
                distance="hamming",
            )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_pair_invariants(self, seed):
        """Indices are valid, labels consistent, at most one pair per target."""
        rng = np.random.default_rng(seed)
        ns, nt, k = 12, 9, 3
        source_features = rng.normal(size=(ns, 4))
        source_labels = rng.integers(0, k, size=ns)
        target_features = rng.normal(size=(nt, 4))
        pseudo = rng.integers(0, k, size=nt)
        pairs = build_pair_set(source_features, source_labels, target_features, pseudo)
        assert len(np.unique(pairs.target_idx)) == len(pairs)
        assert np.all(pairs.source_idx < ns)
        assert np.all(pairs.target_idx < nt)
        assert np.all(source_labels[pairs.source_idx] == pseudo[pairs.target_idx])
