"""Tests for the baseline methods."""

import numpy as np
import pytest

from repro.baselines import (
    BackboneConfig,
    BaselineConfig,
    CDTransS,
    CompactTransformer,
    DER,
    DERpp,
    FineTune,
    HAL,
    MSL,
    TVT,
)
from repro.continual import Scenario, run_continual
from repro.continual.evaluator import evaluate_task


@pytest.fixture()
def config():
    return BaselineConfig.fast()


class TestBackbone:
    def test_feature_shape(self):
        backbone = CompactTransformer(BackboneConfig.fast(), 1, 16, rng=0)
        rng = np.random.default_rng(0)
        out = backbone(rng.normal(size=(3, 1, 16, 16)))
        assert out.shape == (3, backbone.embed_dim)

    def test_cross_attention_context(self):
        backbone = CompactTransformer(BackboneConfig.fast(), 1, 16, rng=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 1, 16, 16))
        ctx = rng.normal(size=(2, 1, 16, 16))
        assert not np.allclose(backbone(x).data, backbone(x, context=ctx).data)

    def test_presets_differ(self):
        assert BackboneConfig.small().embed_dim != BackboneConfig.base().embed_dim


@pytest.mark.parametrize("cls", [FineTune, DER, DERpp, HAL, MSL])
class TestContinualBaselines:
    def test_runs_protocol(self, cls, config, tiny_stream):
        method = cls(config, in_channels=1, image_size=16, rng=0)
        result = run_continual(method, tiny_stream, Scenario.TIL)
        assert 0.0 <= result.acc <= 1.0
        assert method.tasks_seen == 2

    def test_cil_predictions_in_global_range(self, cls, config, tiny_stream):
        method = cls(config, in_channels=1, image_size=16, rng=0)
        for task in tiny_stream:
            method.observe_task(task)
        images, _ = tiny_stream[1].target_test.arrays()
        out = method.predict_global(images, Scenario.CIL)
        assert out.max() < tiny_stream.total_classes

    def test_heads_grow_per_task(self, cls, config, tiny_stream):
        method = cls(config, in_channels=1, image_size=16, rng=0)
        for task in tiny_stream:
            method.observe_task(task)
        assert len(method.til_heads) == 2
        assert method.class_offset(1) == 2


class TestDERSpecifics:
    def test_memory_fills_during_training(self, config, tiny_stream):
        der = DER(config, in_channels=1, image_size=16, rng=0)
        der.observe_task(tiny_stream[0])
        assert len(der.memory) > 0

    def test_derpp_subclasses_der(self):
        assert issubclass(DERpp, DER)
        assert DERpp.name == "DER++"


class TestHALSpecifics:
    def test_anchors_created_per_class(self, config, tiny_stream):
        hal = HAL(config, in_channels=1, image_size=16, rng=0)
        hal.observe_task(tiny_stream[0])
        assert len(hal._anchor_x) == tiny_stream[0].num_classes
        assert hal._anchor_ref is not None

    def test_anchor_refs_refresh_with_tasks(self, config, tiny_stream):
        hal = HAL(config, in_channels=1, image_size=16, rng=0)
        hal.observe_task(tiny_stream[0])
        first_width = hal._anchor_ref.shape[-1]
        hal.observe_task(tiny_stream[1])
        assert hal._anchor_ref.shape[-1] > first_width
        assert len(hal._anchor_x) == 4


class TestMSLSpecifics:
    def test_snapshot_created_after_task(self, config, tiny_stream):
        msl = MSL(config, in_channels=1, image_size=16, rng=0)
        msl.observe_task(tiny_stream[0])
        assert msl._snapshot_model is not None
        # Snapshot must be frozen.
        assert all(not p.requires_grad for p in msl._snapshot_model.parameters())

    def test_snapshot_matches_backbone_at_boundary(self, config, tiny_stream):
        msl = MSL(config, in_channels=1, image_size=16, rng=0)
        msl.observe_task(tiny_stream[0])
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 1, 16, 16))
        assert np.allclose(msl._snapshot_model(x).data, msl.backbone(x).data)


class TestCDTrans:
    def test_single_head_is_replaced_each_task(self, tiny_stream):
        method = CDTransS(in_channels=1, image_size=16, rng=0, epochs=2, warmup_epochs=1)
        method.observe_task(tiny_stream[0])
        head0 = method.head
        method.observe_task(tiny_stream[1])
        assert method.head is not head0

    def test_til_equals_cil_local_prediction(self, tiny_stream):
        method = CDTransS(in_channels=1, image_size=16, rng=0, epochs=2, warmup_epochs=1)
        method.observe_task(tiny_stream[0])
        images, _ = tiny_stream[0].target_test.arrays()
        til = method.predict(images, 0, Scenario.TIL)
        assert til.max() < tiny_stream[0].num_classes

    def test_global_prediction_offsets_to_latest(self, tiny_stream):
        method = CDTransS(in_channels=1, image_size=16, rng=0, epochs=2, warmup_epochs=1)
        for task in tiny_stream:
            method.observe_task(task)
        images, _ = tiny_stream[0].target_test.arrays()
        out = method.predict_global(images, Scenario.CIL)
        # All predictions land in the *latest* task's class block.
        assert out.min() >= tiny_stream[1].class_offset


class TestTVT:
    def test_fit_then_predict(self, tiny_stream):
        tvt = TVT(BackboneConfig.fast(), 1, 16, epochs=3, warmup_epochs=1, rng=0)
        tvt.fit(tiny_stream)
        acc = evaluate_task(tvt, tiny_stream[0], Scenario.TIL)
        assert 0.0 <= acc <= 1.0

    def test_predict_before_fit_raises(self, tiny_stream):
        tvt = TVT(BackboneConfig.fast(), 1, 16, rng=0)
        with pytest.raises(RuntimeError):
            tvt.predict(np.zeros((1, 1, 16, 16)), 0, Scenario.TIL)

    def test_observe_task_is_rejected(self, tiny_stream):
        tvt = TVT(BackboneConfig.fast(), 1, 16, rng=0)
        with pytest.raises(RuntimeError):
            tvt.observe_task(tiny_stream[0])

    def test_joint_training_beats_chance_on_source_domain(self, tiny_stream):
        tvt = TVT(BackboneConfig.fast(), 1, 16, epochs=6, warmup_epochs=2, rng=0)
        tvt.fit(tiny_stream)
        hits = 0
        total = 0
        for task in tiny_stream:
            images, labels = task.source_train.arrays()
            predictions = tvt.predict(images, task.task_id, Scenario.TIL)
            hits += (predictions == labels).sum()
            total += len(labels)
        assert hits / total > 0.6
