"""Tests for the :mod:`repro.api` Session facade.

Contract: one Session owns cache dir / profile / executor settings;
the fluent builder produces the same engine cells the free functions
did; handles expose typed results with row/JSON export; checkpointed
handles pin their cache entries; progress observers see the full
lifecycle and can never kill a run.
"""

import json

import pytest

from repro.api import ProgressEvent, Result, RunHandle, Session
from repro.continual import Scenario
from repro.data.synthetic import mnist_usps
from repro.engine import cache
from repro.engine.registry import SCENARIOS, register_scenario

TINY = dict(samples_per_class=4, test_samples_per_class=2, epochs=2, warmup_epochs=1)

if "_test/api_digits" not in SCENARIOS:

    @register_scenario("_test/api_digits", description="2-task digit stream (api tests)")
    def _api_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=seed
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))


def tiny_builder(session: Session, method: str = "FineTune"):
    return session.run(method).on("_test/api_digits").profile("smoke", **TINY)


class TestBuilder:
    def test_chain_is_immutable(self):
        session = Session()
        base = tiny_builder(session)
        seeded = base.seed(7)
        assert base.base_seed == 0 and seeded.base_seed == 7

    def test_specs_carry_profile_and_overrides(self):
        builder = tiny_builder(Session()).overrides(epochs=1).params(rng_label=1)
        (spec,) = builder.specs()
        assert spec.method == "FineTune"
        assert spec.scenario == "_test/api_digits"
        assert spec.profile == "smoke"
        assert spec.profile_overrides["samples_per_class"] == 4
        assert spec.method_overrides == {"epochs": 1}
        assert spec.scenario_params == {"rng_label": 1}

    def test_seeds_count_expands_from_base(self):
        specs = tiny_builder(Session()).seed(10).seeds(3).specs()
        assert [s.seed for s in specs] == [10, 11, 12]

    def test_seeds_independent_uses_seed_sequence(self):
        from repro.engine.executor import derive_seeds

        specs = tiny_builder(Session()).seeds(3, independent=True).specs()
        assert tuple(s.seed for s in specs) == derive_seeds(0, 3)

    def test_seeds_iterable_taken_verbatim(self):
        specs = tiny_builder(Session()).seeds([5, 3]).specs()
        assert [s.seed for s in specs] == [5, 3]

    def test_eval_parses_protocol_names(self):
        (spec,) = tiny_builder(Session()).eval("til").specs()
        assert spec.eval_scenarios == ("til",)

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            Session().run("CDCL").on("nope/nothing")

    def test_missing_scenario_is_a_clear_error(self):
        with pytest.raises(ValueError, match="on\\("):
            Session().run("CDCL").specs()

    def test_method_lookup_is_case_insensitive(self):
        assert Session().run("cdcl").method == "CDCL"
        assert Session().run("der++").method == "DER++"
        with pytest.raises(ValueError, match="unknown method"):
            Session().run("definitely-not-registered")


class TestExecution:
    def test_result_rows_and_json(self):
        result = tiny_builder(Session()).result()
        assert isinstance(result, Result)
        rows = result.to_rows()
        assert {row["protocol"] for row in rows} == {"til", "cil"}
        for row in rows:
            assert row["method"] == "FineTune"
            assert 0.0 <= row["acc"] <= 1.0
        payload = json.loads(result.to_json())
        assert payload["seeds"] == [0]
        assert len(payload["rows"]) == len(rows)
        assert set(payload["stats"]) == {"til", "cil"}

    def test_acc_and_fgt_accessors(self):
        result = tiny_builder(Session()).result()
        assert result.acc("til") == pytest.approx(
            result.stats()["til"]["acc"][0]
        )
        assert -1.0 <= result.fgt(Scenario.TIL) <= 1.0

    def test_second_run_is_served_from_cache(self):
        session = Session()
        first = tiny_builder(session).start()
        again = tiny_builder(session).start()
        assert isinstance(first, RunHandle)
        assert not first.results[0].cached
        assert again.results[0].cached

    def test_static_method_rows(self):
        result = tiny_builder(Session(), method="TVT").result()
        rows = result.to_rows()
        assert all(row["fgt"] is None for row in rows)
        assert {row["protocol"] for row in rows} == {"til", "cil"}

    def test_session_cache_dir_scopes_the_store(self, tmp_path, monkeypatch):
        import os

        custom = tmp_path / "custom-store"
        session = Session(cache_dir=custom)
        tiny_builder(session).start()
        assert list(custom.glob("*.pkl"))  # entries landed in the session dir
        # and the process environment was restored afterwards
        assert os.environ["REPRO_CACHE_DIR"] != str(custom)

    def test_pair_assembles_table_shape(self):
        from repro.engine.profiles import get_profile

        pair = Session(profile=get_profile("smoke", **TINY)).pair(
            "_test/api_digits",
            ["FineTune"],
            include_tvt=False,
            method_overrides=None,
        )
        assert set(pair.results) == {"FineTune"}
        assert 0.0 <= pair.acc("FineTune", Scenario.TIL) <= 1.0

    def test_sweep_aggregates_seeds(self):
        session = Session()
        spec = tiny_builder(session).specs()[0]
        result = session.sweep(spec, seeds=(0, 1))
        assert result.seeds == (0, 1)
        assert result.acc[Scenario.TIL].n == 2


class TestEvents:
    def test_lifecycle_sequence_serial(self):
        events: list[ProgressEvent] = []
        session = Session(on_event=events.append)
        tiny_builder(session).seeds(2).start()
        kinds = [event.kind for event in events]
        assert kinds == [
            "run-start",
            "cell-start",
            "cell-done",
            "cell-start",
            "cell-done",
            "run-done",
        ]
        assert events[0].total == 2
        assert events[-1].elapsed is not None
        done = [e for e in events if e.kind == "cell-done"]
        assert all(e.result is not None for e in done)

    def test_cell_done_marks_cache_hits(self):
        session = Session()
        tiny_builder(session).start()
        events = []
        session.subscribe(events.append)
        tiny_builder(session).start()
        (done,) = [e for e in events if e.kind == "cell-done"]
        assert done.cached

    def test_observer_exception_never_kills_the_run(self):
        session = Session()

        @session.subscribe
        def _explode(event):
            raise RuntimeError("observer bug")

        result = tiny_builder(session).result()  # must not raise
        assert result.to_rows()
        assert session.events.errors > 0

    def test_unsubscribe_stops_delivery(self):
        session = Session()
        events = []
        session.subscribe(events.append)
        session.unsubscribe(events.append)
        tiny_builder(session).start()
        assert events == []

    def test_events_str_is_loggable(self):
        events = []
        session = Session(on_event=events.append)
        tiny_builder(session).start()
        assert "FineTune" in str([e for e in events if e.kind == "cell-done"][0])


class TestHandles:
    def test_checkpointed_handle_pins_until_release(self):
        session = Session()
        handle = tiny_builder(session).checkpoint().start()
        key = handle.specs[0].cache_key()
        assert key in cache.pinned()
        # A full LRU sweep must skip the pinned entry...
        cache.evict(max_entries=0)
        assert session.has_checkpoint(handle.specs[0])
        handle.release()
        assert key not in cache.pinned()
        # ...and take it once the handle lets go.
        cache.evict(max_entries=0)
        assert not session.has_checkpoint(handle.specs[0])

    def test_release_is_idempotent_and_context_managed(self):
        session = Session()
        with tiny_builder(session).checkpoint().start() as handle:
            assert handle.specs[0].cache_key() in cache.pinned()
        assert handle.specs[0].cache_key() not in cache.pinned()
        handle.release()  # second release: no-op

    def test_uncheckpointed_handle_pins_nothing(self):
        handle = tiny_builder(Session()).start()
        assert not cache.pinned()
        with pytest.raises(ValueError, match="checkpoint"):
            handle.load_model()

    def test_load_model_round_trips(self):
        session = Session()
        handle = tiny_builder(session).checkpoint().start()
        method = handle.load_model()
        assert method.tasks_seen == 2
        handle.release()


class TestRegistryViews:
    def test_views_expose_registries(self):
        session = Session()
        assert "CDCL" in session.methods.names()
        assert "digits/mnist->usps" in session.scenarios.names()

    def test_repr_mentions_profile(self):
        assert "smoke" in repr(Session(profile="smoke"))


class TestRunThroughExperiments:
    def test_table_runner_accepts_a_session(self):
        """The rewired table specs run through a caller-owned session."""
        from repro.experiments.table4 import run_table4

        events = []
        session = Session(
            profile="smoke", on_event=events.append
        )
        result = run_table4(
            directions=("mnist->usps",), variants=("full",), session=session
        )
        assert result.profile == "smoke"
        assert [e.kind for e in events][0] == "run-start"
        assert any(e.kind == "cell-done" for e in events)
