"""End-to-end trace propagation across wire hops.

The contract under test (ISSUE 10 tentpole): one logical request —
a predict through the gateway, a cell submitted to a cluster — carries
a **single trace id** through every hop, on both wire framings, and
peers that predate the ``trace`` field still interoperate.

Everything runs in-process (real TCP sockets, real framing), so the
span buffer is shared and we can assert on the ids each hop recorded.
Trace context crosses the sockets only via the wire ``trace`` field:
an asyncio server handler task does *not* inherit the client's
contextvars, so a shared trace id here proves wire propagation, not
context leakage.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import netio, telemetry
from repro.api import Session
from repro.cluster import ClusterClient, ClusterJobError, ClusterWorker, CoordinatorThread
from repro.cluster.client import run_specs_via_cluster
from repro.continual import Scenario
from repro.data.synthetic import mnist_usps
from repro.engine import cache
from repro.engine.registry import SCENARIOS, register_scenario
from repro.engine.runner import spec_for
from repro.gateway import GatewayApp, GatewayClient
from repro.gateway.replica import ReplicaApp
from repro.serve import InferenceService

TINY = dict(samples_per_class=4, test_samples_per_class=4, epochs=1, warmup_epochs=1)

if "_test/trace_digits" not in SCENARIOS:

    @register_scenario("_test/trace_digits", description="2-task stream (trace tests)")
    def _trace_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps", samples_per_class=4, test_samples_per_class=4, rng=seed
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_telemetry(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "trace-cache"))
    cache.reset_pins()
    telemetry.clear_spans()
    yield
    telemetry.clear_spans()
    cache.reset_pins()


@pytest.fixture()
def session(tmp_path):
    return Session(cache_dir=tmp_path / "trace-cache")


def checkpointed_spec(session, seed=0):
    handle = (
        session.run("FineTune")
        .on("_test/trace_digits")
        .profile("smoke", **TINY)
        .seed(seed)
        .checkpoint()
        .start()
    )
    spec = handle.specs[0]
    handle.release()
    return spec


def sample_images(spec):
    stream = SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)
    images, _labels = stream[0].target_test.arrays()
    return images


def spans_by_name() -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for entry in telemetry.recent_spans():
        grouped.setdefault(entry["name"], []).append(entry)
    return grouped


def single_trace_id(*names: str) -> str:
    """The one trace id every named span carries (fails on drift)."""
    grouped = spans_by_name()
    ids = set()
    for name in names:
        assert grouped.get(name), f"no '{name}' span recorded; have {sorted(grouped)}"
        ids.update(entry["trace"] for entry in grouped[name])
    assert len(ids) == 1, f"expected one trace id across {names}, got {ids}"
    return next(iter(ids))


# ----------------------------------------------------------------------
# client -> gateway -> replica
# ----------------------------------------------------------------------
class _Fleet:
    """A gateway plus one in-process replica on a private cache."""

    def __init__(self, gateway_session, tmp_path):
        self.gateway = GatewayApp(
            gateway_session, lease_timeout=30.0, retry_base_delay=0.005
        )
        replica_session = Session(cache_dir=tmp_path / "trace-replica")
        self.replica = ReplicaApp(InferenceService(replica_session, max_delay_ms=1))

    async def __aenter__(self):
        self.host, self.port = await self.gateway.start()
        host, port = await self.replica.start()
        await netio.request_async(
            self.host, self.port, {"op": "hello", "name": "t0", "host": host, "port": port}
        )
        return self

    async def __aexit__(self, *exc):
        await self.replica.close()
        await self.gateway.close()


class TestGatewayTrace:
    @pytest.mark.parametrize("wire", ["2", "1"])
    def test_one_trace_id_spans_client_gateway_replica(
        self, session, tmp_path, monkeypatch, wire
    ):
        """A sampled predict yields client.predict, gateway.relay and
        the replica's server.predict under one trace id — on binary
        frames and on forced JSON lines alike."""
        monkeypatch.setenv("REPRO_WIRE", wire)
        spec = checkpointed_spec(session)
        images = sample_images(spec)
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path) as fleet:
                client.port = fleet.port
                # Warm hop (checkpoint push + replica model load)
                # happens untraced, so the traced request is one clean
                # client->gateway->replica round trip.
                await client.predict_async(spec, images, task_id=0)
                telemetry.clear_spans()
                monkeypatch.setenv("REPRO_TRACE", "1")
                return await client.predict_async(spec, images, task_id=0)

        served = asyncio.run(main())
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]
        assert np.array_equal(served, direct)
        # On v2 the replica's dispatch span names the parsed op; on a
        # multi-kilobyte JSON line the op stays unparsed at admission
        # (O(header) discipline), so the hop records as server.raw —
        # the trace id is tail-sniffed off the line either way.
        replica_hop = "server.predict" if wire == "2" else "server.raw"
        trace_id = single_trace_id("client.predict", "gateway.relay", replica_hop)
        assert len(trace_id) == 16
        # The replica's predict span must be the gateway relay's trace,
        # not a root the replica minted itself.
        grouped = spans_by_name()
        assert all(entry["parent"] for entry in grouped["gateway.relay"])

    def test_untraced_client_still_served_and_starts_no_trace(
        self, session, tmp_path, monkeypatch
    ):
        """A peer with tracing unset sends no trace field; servers in
        participate-only mode record no sampled spans and the answer is
        bitwise-identical."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        spec = checkpointed_spec(session)
        images = sample_images(spec)
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path) as fleet:
                client.port = fleet.port
                await client.predict_async(spec, images, task_id=0)
                telemetry.clear_spans()
                return await client.predict_async(spec, images, task_id=0)

        served = asyncio.run(main())
        direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
            Scenario.TIL
        ]
        assert np.array_equal(served, direct)
        assert telemetry.recent_spans() == []

    def test_foreign_trace_field_tolerated_by_trace_off_server(
        self, session, tmp_path, monkeypatch
    ):
        """The old-peer direction: a request carrying a ``trace`` field
        reaches a server that ignores it (``REPRO_TRACE=0`` is exactly
        the pre-telemetry dispatch path) and is served normally."""
        monkeypatch.setenv("REPRO_TRACE", "0")
        spec = checkpointed_spec(session)
        images = sample_images(spec)
        client = GatewayClient("127.0.0.1", session, attempts=8)

        async def main():
            async with _Fleet(session, tmp_path) as fleet:
                client.port = fleet.port
                await client.predict_async(spec, images[:1], task_id=0)
                # Handcraft the trace field a newer client would append.
                wire_spec = client._wire_spec(spec)
                return await netio.request_async(
                    fleet.host,
                    fleet.port,
                    {
                        "op": "predict",
                        "model": wire_spec,
                        "images": images[:2].tolist(),
                        "task_id": 0,
                        "scenario": "til",
                        "trace": {"id": "deadbeefdeadbeef", "span": "12345678"},
                    },
                )

        answer = asyncio.run(main())
        assert answer["ok"], answer
        assert telemetry.recent_spans() == []


# ----------------------------------------------------------------------
# client -> coordinator -> worker
# ----------------------------------------------------------------------
class TestClusterTrace:
    @pytest.mark.parametrize("wire", [None, "1"])
    def test_one_trace_id_spans_client_coordinator_worker(
        self, tmp_path, monkeypatch, wire
    ):
        """A submitted cell yields client.submit, worker.execute and
        the worker's engine.run_one under one trace id, and the
        coordinator links its provenance rows to the same id."""
        if wire is not None:
            monkeypatch.setenv("REPRO_WIRE", wire)
        monkeypatch.setenv("REPRO_TRACE", "1")
        spec = spec_for(
            "FineTune", "_test/trace_digits", "smoke", seed=0, profile_overrides=TINY
        )
        telemetry.clear_spans()

        with CoordinatorThread(check_interval=0.05) as (host, port):
            address = f"{host}:{port}"
            worker = ClusterWorker(address, name="trace-worker", poll_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                [result] = run_specs_via_cluster([spec], address, use_cache=False)
            finally:
                worker.stop()
                try:
                    ClusterClient(address).shutdown()
                except (OSError, ClusterJobError):
                    pass
                thread.join(timeout=10)

        assert result.method == "FineTune"
        trace_id = single_trace_id("client.submit", "worker.execute", "engine.run_one")
        # Worker-side spans are children of the adopted wire context —
        # they must not be roots of their own.
        grouped = spans_by_name()
        for entry in grouped["worker.execute"] + grouped["engine.run_one"]:
            assert entry["parent"] is not None
        # The run store's span rows carry the same trace id, which is
        # what lets `runs query --phases` attribute a slow cell.
        from repro.store import RunStore

        rows = RunStore().provenance(spec.cache_key())
        span_rows = [row for row in rows if row["event"].startswith("span:")]
        assert span_rows, f"no span provenance rows, have {[r['event'] for r in rows]}"
        assert all(trace_id in (row["detail"] or "") for row in span_rows)

    def test_traceless_submit_interops_with_new_coordinator(
        self, tmp_path, monkeypatch
    ):
        """A pre-telemetry client (no trace field anywhere) drives the
        cluster exactly as before; the lease answer's ``trace: null``
        is ignored by the new worker's adopt()."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        spec = spec_for(
            "FineTune", "_test/trace_digits", "smoke", seed=1, profile_overrides=TINY
        )
        telemetry.clear_spans()

        with CoordinatorThread(check_interval=0.05) as (host, port):
            address = f"{host}:{port}"
            worker = ClusterWorker(address, name="plain-worker", poll_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                [result] = run_specs_via_cluster([spec], address, use_cache=False)
            finally:
                worker.stop()
                try:
                    ClusterClient(address).shutdown()
                except (OSError, ClusterJobError):
                    pass
                thread.join(timeout=10)

        assert result.method == "FineTune"
        assert telemetry.recent_spans() == []
