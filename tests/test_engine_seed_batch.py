"""Tests for the ensemble axis: seed-batched multi-seed training.

Contract (DESIGN.md "Ensemble axis"):

* at float64 the batched program is **bitwise-identical** per seed to
  the serial `run_one` path, for every lifted method;
* batched runs land under the normal per-seed cell keys, so batched
  and per-process sweeps share the cache in both directions, and warm
  seeds short-circuit — only the misses are batched;
* duplicate seeds are rejected on every multi-seed entry point;
* unliftable methods fall back to the classic path transparently
  (`run_seed_cells`) or refuse loudly (`run_seed_batch` direct);
* the 5-D kernels match the solo kernels bitwise at both dtypes.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.api import Session
from repro.autograd import Tensor
from repro.autograd.conv import avg_pool2d, conv2d, max_pool2d
from repro.continual import Scenario
from repro.data.synthetic import mnist_usps
from repro.engine.executor import derive_seeds, run_seed_cells, run_seed_sweep
from repro.engine.registry import SCENARIOS, register_scenario
from repro.engine.runner import RunSpec, run_one
from repro.engine.seed_batch import liftable, lifted_methods, run_seed_batch

#: float64 keeps every comparison exact; 2 tasks and 2 epochs keep the
#: training cheap while still crossing a task boundary (optimizer state
#: and replay memory survive into task 2 — the regime that breaks
#: incorrect lifts).
TINY = dict(
    samples_per_class=4,
    test_samples_per_class=2,
    epochs=2,
    warmup_epochs=1,
    dtype="float64",
)

if "_test/seed_batch_digits" not in SCENARIOS:

    @register_scenario(
        "_test/seed_batch_digits", description="2-task digit stream (seed-batch tests)"
    )
    def _seed_batch_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=seed
        )
        stream.tasks = stream.tasks[:2]
        return stream


def tiny_spec(method: str = "FineTune", **kwargs) -> RunSpec:
    return RunSpec(
        method=method,
        scenario="_test/seed_batch_digits",
        profile="smoke",
        profile_overrides=dict(TINY),
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "seed-batch-cache"))


def assert_cells_equal(solo, batch) -> None:
    """Bitwise comparison of two cells' full result payload."""
    assert set(solo.results) == set(batch.results)
    for scenario, r_solo in solo.results.items():
        r_batch = batch.results[scenario]
        np.testing.assert_array_equal(
            r_solo.r_matrix.values, r_batch.r_matrix.values
        )
        assert r_solo.acc == r_batch.acc
        assert r_solo.fgt == r_batch.fgt


class TestBitwiseEquality:
    """ISSUE acceptance: float64 batched == serial, per seed, bitwise."""

    @pytest.mark.parametrize(
        "method,seeds",
        [("FineTune", (0, 1, 2)), ("DER", (0, 1)), ("CDCL", (0, 1))],
    )
    def test_batched_matches_serial_bitwise(self, method, seeds):
        spec = tiny_spec(method)
        assert liftable(spec)
        batched = run_seed_batch(spec, seeds, use_cache=False)
        assert [cell.seed for cell in batched] == list(seeds)
        for seed, cell in zip(seeds, batched):
            solo = run_one(replace(spec, seed=seed), use_cache=False)
            assert_cells_equal(solo, cell)

    def test_lifted_method_registry(self):
        assert set(lifted_methods()) == {"CDCL", "DER", "FineTune"}
        assert not liftable(tiny_spec("EWC"))


class TestCrossModeCache:
    """Batched and per-seed runs share cells under the same keys."""

    def test_batched_run_warms_per_seed_lookups(self):
        spec = tiny_spec()
        cold = run_seed_batch(spec, (0, 1), use_cache=True)
        assert not any(cell.cached for cell in cold)
        for seed, batch_cell in zip((0, 1), cold):
            warm = run_one(replace(spec, seed=seed), use_cache=True)
            assert warm.cached
            assert_cells_equal(warm, batch_cell)

    def test_per_seed_runs_warm_batched_sweep(self):
        spec = tiny_spec()
        solos = [run_one(replace(spec, seed=s), use_cache=True) for s in (0, 1)]
        cells = run_seed_cells(spec, (0, 1), batched=True, use_cache=True)
        assert all(cell.cached for cell in cells)
        for solo, cell in zip(solos, cells):
            assert_cells_equal(solo, cell)

    def test_mixed_hits_batch_only_the_misses(self):
        spec = tiny_spec()
        run_one(replace(spec, seed=1), use_cache=True)
        cells = run_seed_cells(spec, (0, 1, 2), batched=True, use_cache=True)
        assert [cell.cached for cell in cells] == [False, True, False]
        assert [cell.seed for cell in cells] == [0, 1, 2]
        # The misses must agree with a fresh serial run seed-for-seed.
        for seed, cell in zip((0, 2), (cells[0], cells[2])):
            assert_cells_equal(run_one(replace(spec, seed=seed), use_cache=False), cell)


class TestValidation:
    def test_duplicate_seeds_rejected_batched(self):
        with pytest.raises(ValueError, match="distinct"):
            run_seed_sweep(tiny_spec(), seeds=(0, 0, 1), batched=True)

    def test_duplicate_seeds_rejected_classic(self):
        with pytest.raises(ValueError, match="distinct"):
            run_seed_sweep(tiny_spec(), seeds=(0, 0, 1), batched=False)

    def test_duplicate_seeds_rejected_direct(self):
        with pytest.raises(ValueError, match="distinct"):
            run_seed_batch(tiny_spec(), (3, 3))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            run_seed_batch(tiny_spec(), ())

    def test_direct_batch_refuses_unliftable_method(self):
        with pytest.raises(ValueError, match="EWC"):
            run_seed_batch(tiny_spec("EWC"), (0, 1))

    def test_checkpoint_requires_cache(self):
        with pytest.raises(ValueError, match="checkpoint"):
            run_seed_batch(tiny_spec(), (0, 1), use_cache=False, checkpoint=True)


class TestFallback:
    def test_unliftable_method_falls_back_transparently(self):
        """batched=True on an unliftable method runs the classic path."""
        spec = tiny_spec("EWC")
        cells = run_seed_cells(spec, (0, 1), batched=True, use_cache=False)
        assert [cell.seed for cell in cells] == [0, 1]
        assert_cells_equal(run_one(replace(spec, seed=0), use_cache=False), cells[0])


class TestDeriveSeeds:
    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            derive_seeds(0, 0)
        with pytest.raises(ValueError, match="positive"):
            derive_seeds(0, -3)

    def test_count_one(self):
        assert derive_seeds(42, 1) == (3444837047,)

    def test_very_large_base_seed(self):
        # SeedSequence takes arbitrary-precision entropy; the expansion
        # must stay stable for bases beyond 64 bits.
        assert derive_seeds(2**100, 3) == (740723363, 1301814144, 1259337830)
        assert derive_seeds(2**100, 3) == derive_seeds(2**100, 3)

    def test_stability_snapshot(self):
        # Frozen expansions: a change here silently severs every cached
        # multiseed sweep from its cells — treat as a breaking change.
        expected = {
            0: (2968811710, 3677149159, 745650761, 2884920346,
                2642120001, 549907821, 574372308, 742431198),
            1: (1835504127, 1731038949, 1320224556, 2330041505,
                321059914, 1226144109, 2879408573, 3503041500),
            42: (3444837047, 2669555309, 2046530742, 3581440988,
                 1691623607, 2099784219, 1184028159, 862288241),
        }
        for base, seeds in expected.items():
            assert derive_seeds(base, 8) == seeds

    def test_prefix_property(self):
        assert derive_seeds(7, 8)[:3] == derive_seeds(7, 3)


class TestEnsembleKernels:
    """The 5-D kernels must match solo calls bitwise, grads included."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_conv2d_matches_per_seed(self, dtype):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 2, 4, 8, 8)).astype(dtype)
        w = rng.normal(size=(3, 5, 4, 3, 3)).astype(dtype)
        b = rng.normal(size=(3, 5)).astype(dtype)
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        bt = Tensor(b, requires_grad=True)
        out = conv2d(xt, wt, bt, stride=1, padding=1)
        out.sum().backward()
        for s in range(3):
            xs = Tensor(x[s], requires_grad=True)
            ws = Tensor(w[s], requires_grad=True)
            bs = Tensor(b[s], requires_grad=True)
            solo = conv2d(xs, ws, bs, stride=1, padding=1)
            solo.sum().backward()
            np.testing.assert_array_equal(out.data[s], solo.data)
            np.testing.assert_array_equal(xt.grad[s], xs.grad)
            np.testing.assert_array_equal(wt.grad[s], ws.grad)
            np.testing.assert_array_equal(bt.grad[s], bs.grad)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("pool", [max_pool2d, avg_pool2d])
    def test_pooling_matches_per_seed(self, dtype, pool):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 3, 2, 8, 8)).astype(dtype)
        xt = Tensor(x, requires_grad=True)
        out = pool(xt, 2)
        out.sum().backward()
        for s in range(4):
            xs = Tensor(x[s], requires_grad=True)
            solo = pool(xs, 2)
            solo.sum().backward()
            np.testing.assert_array_equal(out.data[s], solo.data)
            np.testing.assert_array_equal(xt.grad[s], xs.grad)

    def test_mismatched_seed_axes_rejected(self):
        x = Tensor(np.zeros((3, 2, 4, 8, 8)))
        w = Tensor(np.zeros((2, 5, 4, 3, 3)))
        with pytest.raises(ValueError, match="seeds"):
            conv2d(x, w)


class TestSessionRouting:
    def _builder(self, session: Session):
        return (
            session.run("FineTune")
            .on("_test/seed_batch_digits")
            .profile("smoke", **TINY)
        )

    def test_builder_carries_batched_flag(self):
        base = self._builder(Session())
        assert base.seed_batched is None
        assert base.seeds(2, batched=True).seed_batched is True
        assert base.seeds(2, batched=False).seed_batched is False

    def test_batched_session_run_shares_cache_with_serial(self):
        session = Session()
        batched = self._builder(session).seeds(2, batched=True).result()
        serial = self._builder(session).seeds(2, batched=False).result()
        for protocol in (Scenario.TIL, Scenario.CIL):
            assert batched.acc(protocol) == serial.acc(protocol)
            assert batched.fgt(protocol) == serial.fgt(protocol)
