"""Tests for the domain-shift transform operators."""

import numpy as np
import pytest

from repro.data import transforms as T


@pytest.fixture()
def batch(rng):
    return rng.random((4, 3, 8, 8))


class TestPhotometric:
    def test_normalize(self, batch):
        out = T.Normalize(0.5, 0.5)(batch)
        assert np.allclose(out, (batch - 0.5) / 0.5)

    def test_contrast_fixed_point(self, batch):
        out = T.Contrast(2.0)(batch)
        assert np.allclose(out, (batch - 0.5) * 2 + 0.5)
        # 0.5 is invariant
        half = np.full((1, 1, 2, 2), 0.5)
        assert np.allclose(T.Contrast(3.0)(half), 0.5)

    def test_brightness(self, batch):
        assert np.allclose(T.Brightness(0.2)(batch), batch + 0.2)

    def test_invert_involution(self, batch):
        inv = T.Invert()
        assert np.allclose(inv(inv(batch)), batch)

    def test_gaussian_noise_changes_data_preserves_mean(self, batch, rng):
        out = T.GaussianNoise(0.1)(batch, rng)
        assert not np.allclose(out, batch)
        assert abs(out.mean() - batch.mean()) < 0.02

    def test_blur_preserves_mass(self, batch):
        out = T.GaussianBlur(1.0)(batch)
        assert np.isclose(out.sum(), batch.sum(), rtol=0.05)
        # Blur reduces variance.
        assert out.var() < batch.var()


class TestStructural:
    def test_channel_mix_identity(self, batch):
        out = T.ChannelMix(np.eye(3))(batch)
        assert np.allclose(out, batch)

    def test_channel_mix_swap(self, batch):
        swap = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 1]], dtype=float)
        out = T.ChannelMix(swap)(batch)
        assert np.allclose(out[:, 0], batch[:, 1])
        assert np.allclose(out[:, 1], batch[:, 0])

    def test_channel_mix_random_near_identity_at_zero_strength(self, rng):
        mix = T.ChannelMix.random(3, strength=0.0, rng=rng)
        assert np.allclose(mix.matrix, np.eye(3))

    def test_occlusion_zeroes_patch(self, rng):
        batch = np.ones((2, 1, 8, 8))
        out = T.Occlusion(size=3)(batch, rng)
        for img in out:
            assert (img == 0).sum() == 9

    def test_occlusion_does_not_mutate_input(self, rng):
        batch = np.ones((1, 1, 8, 8))
        T.Occlusion(size=2)(batch, rng)
        assert np.all(batch == 1)

    def test_style_field_is_deterministic_additive(self, batch):
        field_a = T.StyleField((3, 8, 8), strength=0.3, rng=5)
        field_b = T.StyleField((3, 8, 8), strength=0.3, rng=5)
        assert np.allclose(field_a.field, field_b.field)
        out = field_a(batch)
        assert np.allclose(out - batch, field_a.field)

    def test_style_field_strength_bounds_amplitude(self):
        field = T.StyleField((1, 8, 8), strength=0.25, rng=0)
        assert np.abs(field.field).max() <= 0.25 + 1e-9

    def test_elastic_jitter_preserves_content(self, rng):
        batch = np.zeros((1, 1, 8, 8))
        batch[0, 0, 4, 4] = 1.0
        out = T.ElasticJitter(max_shift=2)(batch, rng)
        assert out.sum() == 1.0  # rolled, not lost


class TestCompose:
    def test_applies_in_order(self, batch):
        pipeline = T.Compose([T.Brightness(0.1), T.Contrast(2.0)])
        expected = ((batch + 0.1) - 0.5) * 2 + 0.5
        assert np.allclose(pipeline(batch), expected)

    def test_empty_compose_is_identity(self, batch):
        assert np.allclose(T.Compose([])(batch), batch)

    def test_repr_lists_stages(self):
        pipeline = T.Compose([T.Invert(), T.Brightness(0.1)])
        assert "Invert" in repr(pipeline)
