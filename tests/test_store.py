"""Tests for :mod:`repro.store` — the queryable run index.

Contract under test: every cache mutation (store/evict/verify/clear)
is mirrored into ``runs.sqlite`` write-through, so on a warm cache the
store holds exactly one row per cached cell (count equals the cache
manifest count — the PR's acceptance criterion); ``backfill``
reconstructs the index from a cache directory that never had one;
reports rendered from recorded rows are byte-identical to the
engine-derived tables; and a cluster run records fleet provenance
(worker, attempts, lease timings) against the same rows.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import Session
from repro.cluster import ClusterClient, ClusterJobError, ClusterWorker, CoordinatorThread
from repro.data.synthetic import mnist_usps
from repro.engine import cache
from repro.engine.executor import run_specs
from repro.engine.registry import SCENARIOS, register_scenario
from repro.engine.runner import run_one, spec_for, spec_summary
from repro.store import RunStore, current_git_sha, record_rows, records_to_json

#: Small enough that one cell trains in about a second.
TINY = dict(samples_per_class=4, test_samples_per_class=4, epochs=1, warmup_epochs=1)

if "_test/store_digits" not in SCENARIOS:

    @register_scenario("_test/store_digits", description="2-task stream (store tests)")
    def _store_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps", samples_per_class=4, test_samples_per_class=4, rng=seed
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))
    yield


def tiny_spec(method: str = "FineTune", seed: int = 0):
    return spec_for(
        method, "_test/store_digits", "smoke", seed=seed, profile_overrides=TINY
    )


# ----------------------------------------------------------------------
# Write-through sync
# ----------------------------------------------------------------------
class TestWriteThrough:
    def test_store_sync_creates_typed_row(self):
        spec = tiny_spec()
        result = run_one(spec)
        store = RunStore()
        assert store.count() == 1
        record = store.get(spec.cache_key())
        assert record is not None
        assert record.method == "FineTune"
        assert record.scenario == "_test/store_digits"
        assert record.profile == "smoke"
        assert record.seed == 0
        assert record.dtype == spec.resolved_profile().dtype
        assert record.status == "complete"
        assert record.git_sha == current_git_sha()
        assert record.hostname
        assert set(record.protocols()) == {"til", "cil"}
        from repro.continual import Scenario

        for protocol in record.protocols():
            assert record.acc(protocol) == pytest.approx(
                result.results[Scenario.parse(protocol)].acc
            )

    def test_row_count_matches_manifest(self):
        """Acceptance criterion: one store row per cached cell."""
        for method in ("FineTune", "DER"):
            for seed in (0, 1):
                run_one(tiny_spec(method, seed=seed))
        assert RunStore().count() == len(cache.manifest()) == 4

    def test_non_result_payload_indexes_without_metrics(self):
        cache.store("a" * 32, b"payload", meta={"method": "CDCL", "scenario": "x"})
        store = RunStore()
        assert store.count() == len(cache.manifest()) == 1
        record = store.get("a" * 32)
        assert record.metrics is None
        assert record.protocols() == ()

    def test_evict_flips_status_and_keeps_provenance(self):
        spec = tiny_spec()
        run_one(spec)
        cache.evict(max_entries=0)
        store = RunStore()
        assert store.count() == 0  # default filter: complete only
        [record] = store.query(status=None)
        assert record.status == "evicted"
        events = [row["event"] for row in store.provenance(spec.cache_key())]
        # The cell's per-phase profile rows (span:<phase>) land between
        # the store and evict lifecycle events; both must survive.
        assert [e for e in events if not e.startswith("span:")] == ["store", "evict"]
        assert any(e.startswith("span:") for e in events)

    def test_verify_repair_demotes_checkpoint_only_entries(self):
        spec = tiny_spec()
        run_one(spec, checkpoint=True)
        key = spec.cache_key()
        (cache.cache_dir() / f"{key}.pkl").write_bytes(b"garbage")
        cache.verify(repair=True)
        record = RunStore().get(key)
        assert record.status == "checkpoint-only"

    def test_clear_wipes_the_index(self):
        run_one(tiny_spec())
        cache.clear()
        store = RunStore()
        assert store.query(status=None) == []
        assert store.provenance() == []

    def test_repro_no_store_disables_indexing(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        run_one(tiny_spec())
        assert not RunStore().path.exists()

    def test_store_failure_never_fails_the_run(self, monkeypatch):
        import repro.store

        def boom(*args, **kwargs):
            raise RuntimeError("store down")

        monkeypatch.setattr(repro.store, "sync_cache_event", boom)
        result = run_one(tiny_spec())  # must not raise
        assert cache.contains(tiny_spec().cache_key())
        assert result is not None


# ----------------------------------------------------------------------
# Query API
# ----------------------------------------------------------------------
class TestQuery:
    def _seed_cells(self):
        for method in ("FineTune", "DER"):
            for seed in (0, 1):
                run_one(tiny_spec(method, seed=seed))

    def test_filters_compose(self):
        self._seed_cells()
        store = RunStore()
        assert len(store.query()) == 4
        assert len(store.query(method="DER")) == 2
        [record] = store.query(method="DER", seed=1)
        assert (record.method, record.seed) == ("DER", 1)
        assert len(store.query(limit=3)) == 3

    def test_rows_ordered_oldest_first(self):
        self._seed_cells()
        created = [record.created for record in RunStore().query()]
        assert created == sorted(created)

    def test_since_sha_unknown_raises(self):
        self._seed_cells()
        with pytest.raises(ValueError, match="no rows"):
            RunStore().query(since_sha="feedface")

    def test_since_sha_keeps_rows_from_that_sha_on(self, monkeypatch):
        import repro.store.db as db

        monkeypatch.setattr(db, "_GIT_SHA", "aaa1111")
        run_one(tiny_spec(seed=0))
        monkeypatch.setattr(db, "_GIT_SHA", "bbb2222")
        run_one(tiny_spec(seed=1))
        store = RunStore()
        assert store.shas() == ["aaa1111", "bbb2222"]
        assert {r.seed for r in store.query(since_sha="bbb2222")} == {1}
        assert len(store.query(since_sha="aaa1111")) == 2

    def test_export_shapes_follow_result_conventions(self):
        run_one(tiny_spec())
        records = RunStore().query()
        rows = record_rows(records)
        assert len(rows) == 2  # one per (record, protocol)
        assert {row["protocol"] for row in rows} == {"til", "cil"}
        assert all("acc" in row and "cache_key" in row for row in rows)
        document = json.loads(records_to_json(records))
        assert document["rows"] == rows


# ----------------------------------------------------------------------
# Concurrency and backfill
# ----------------------------------------------------------------------
class TestConcurrentWriters:
    def test_jobs2_pool_indexes_every_cell(self):
        specs = [tiny_spec(seed=seed) for seed in range(4)]
        run_specs(specs, jobs=2)
        store = RunStore()
        assert store.count() == len(cache.manifest()) == 4
        for spec in specs:
            assert store.get(spec.cache_key()) is not None


class TestBackfill:
    def test_backfill_indexes_a_legacy_cache(self, monkeypatch):
        # Produce a cache that never had a store (pre-0.6 layout).
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        specs = [tiny_spec(seed=seed) for seed in range(2)]
        for spec in specs:
            run_one(spec)
        monkeypatch.delenv("REPRO_NO_STORE")
        store = RunStore()
        assert not store.path.exists()

        summary = store.backfill()
        assert summary == {"entries": 2, "indexed": 2, "skipped": 0, "errors": 0}
        assert store.count() == len(cache.manifest()) == 2
        record = store.get(specs[0].cache_key())
        # The sidecar's spec summary survives the round-trip.
        assert record.method == "FineTune"
        assert record.profile == "smoke"
        assert record.metrics is not None

    def test_backfill_is_idempotent_and_rebuild_rereads(self):
        run_one(tiny_spec())
        store = RunStore()
        assert store.backfill()["skipped"] == 1
        summary = store.backfill(rebuild=True)
        assert summary["indexed"] == 1
        assert store.count() == 1

    def test_backfill_counts_unreadable_entries_as_errors(self):
        run_one(tiny_spec())
        (cache.cache_dir() / ("b" * 32 + ".pkl")).write_bytes(b"garbage")
        summary = RunStore().backfill(rebuild=True)
        assert summary["errors"] == 1
        assert summary["indexed"] == 1


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
class TestDiff:
    def test_diff_between_shas_matches_cells_by_identity(self, monkeypatch):
        import repro.store.db as db

        monkeypatch.setattr(db, "_GIT_SHA", "aaa1111")
        spec = tiny_spec()
        result = run_one(spec)
        # Re-record the same cell under a second SHA without retraining.
        monkeypatch.setattr(db, "_GIT_SHA", "bbb2222")
        RunStore().index_result("f" * 32, result, spec_summary(spec))

        deltas = RunStore().diff("aaa1111", "bbb2222")
        assert {row["protocol"] for row in deltas} == {"til", "cil"}
        for row in deltas:
            assert row["method"] == "FineTune"
            assert row["acc_delta"] == pytest.approx(0.0)
            assert row["fgt_delta"] == pytest.approx(0.0)

    def test_diff_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="axis"):
            RunStore().diff("a", "b", axis="hostname")


# ----------------------------------------------------------------------
# Cluster provenance
# ----------------------------------------------------------------------
class TestClusterProvenance:
    def test_two_worker_run_records_fleet_provenance(self):
        specs = [tiny_spec(seed=seed) for seed in range(4)]
        with CoordinatorThread(check_interval=0.05) as (host, port):
            address = f"{host}:{port}"
            pool = [
                ClusterWorker(address, name=f"prov-worker-{i}", poll_interval=0.05)
                for i in range(2)
            ]
            threads = [
                threading.Thread(target=worker.run, daemon=True) for worker in pool
            ]
            for thread in threads:
                thread.start()
            try:
                run_specs(specs, cluster=address)
            finally:
                for worker in pool:
                    worker.stop()
                try:
                    ClusterClient(address).shutdown()
                except (OSError, ClusterJobError):
                    pass
                for thread in threads:
                    thread.join(timeout=10)

        store = RunStore()
        for spec in specs:
            record = store.get(spec.cache_key())
            assert record is not None
            # The coordinator's registered id (w1/w2...), not the
            # worker's self-chosen display name.
            assert record.worker
            assert record.attempts >= 1
            completes = [
                row
                for row in store.provenance(spec.cache_key())
                if row["event"] == "cluster-complete"
            ]
            assert len(completes) == 1
            assert completes[0]["worker"] == record.worker
            assert completes[0]["lease_seconds"] > 0
        # At most the two registered pollers executed the sweep.
        workers = {store.get(spec.cache_key()).worker for spec in specs}
        assert 1 <= len(workers) <= 2


# ----------------------------------------------------------------------
# Reports from the store
# ----------------------------------------------------------------------
class TestReportParity:
    def test_table1_from_store_is_byte_identical(self):
        """Acceptance criterion: store-rendered == engine-rendered."""
        from repro.experiments import get_profile, render_table1, run_table1
        from repro.store.report import render_report

        profile = get_profile("smoke")
        methods = ("DER", "CDCL")
        result = run_table1(columns=("MN->US",), profile=profile, methods=methods)
        engine_text = render_table1(result)
        store_text = render_report(
            RunStore(),
            "table1",
            columns=("MN->US",),
            profile="smoke",
            methods=methods,
        )
        assert store_text == engine_text

    def test_missing_cell_points_at_backfill(self):
        from repro.store.report import render_report

        with pytest.raises(LookupError, match="backfill"):
            render_report(RunStore(), "table1", columns=("MN->US",), profile="smoke")

    def test_trend_aggregates_per_sha(self, monkeypatch):
        import repro.store.db as db
        from repro.store.report import trend_from_store

        monkeypatch.setattr(db, "_GIT_SHA", "aaa1111")
        run_one(tiny_spec(seed=0))
        monkeypatch.setattr(db, "_GIT_SHA", "bbb2222")
        run_one(tiny_spec(seed=1))
        rows = trend_from_store(RunStore())
        assert [row["sha"] for row in rows] == ["aaa1111", "bbb2222"]
        assert all(row["cells"] == 1 for row in rows)
        assert rows[1]["delta"] is not None


# ----------------------------------------------------------------------
# Session.runs() fluent view
# ----------------------------------------------------------------------
class TestRunsView:
    def _session(self):
        return Session(profile="smoke")

    def test_chain_filters_and_typed_records(self):
        run_one(tiny_spec("FineTune", seed=0))
        run_one(tiny_spec("DER", seed=1))
        session = self._session()
        view = session.runs().method("der")  # registry-resolved casing
        [record] = view.records()
        assert record.method == "DER"
        assert view.count() == len(view) == 1
        assert [r.method for r in session.runs()] == ["FineTune", "DER"]

    def test_chains_are_immutable_and_shareable(self):
        session = self._session()
        base = session.runs().scenario("_test/store_digits")
        der = base.method("DER")
        assert base.filters == {"scenario": "_test/store_digits"}
        assert der.filters["method"] == "DER"
        assert "method" not in base.filters

    def test_export_matches_store_rows(self):
        run_one(tiny_spec())
        session = self._session()
        view = session.runs().seed(0).dtype("float32")
        assert view.to_rows() == record_rows(view.records())
        document = json.loads(view.to_json())
        assert document["filters"] == {"seed": 0, "dtype": "float32"}
        assert document["count"] == len(document["rows"]) == 2

    def test_unknown_method_names_pass_through(self):
        session = self._session()
        view = session.runs().method("not-a-method")
        assert view.filters["method"] == "not-a-method"
        assert view.records() == []
