"""Tests for the concrete nn layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check
from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    Conv2d,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    MultiHeadSelfAttention,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    TransformerEncoder,
    TransformerEncoderLayer,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(3)


class TestLinear:
    def test_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(Tensor(rng.normal(size=(5, 4)))).shape == (5, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4))))
        assert np.allclose(zero_out.data, 0.0)

    def test_matches_manual_affine(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradient_check(lambda x: layer(x), [x])

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 6, rng=rng)
        assert layer(Tensor(rng.normal(size=(2, 5, 4)))).shape == (2, 5, 6)

    def test_deterministic_given_seed(self):
        a = Linear(4, 4, rng=123)
        b = Linear(4, 4, rng=123)
        assert np.allclose(a.weight.data, b.weight.data)


class TestConvLayers:
    def test_conv_module_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        assert layer(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_conv_no_bias(self, rng):
        layer = Conv2d(1, 2, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_pool_modules(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 8, 8)))
        assert MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert AvgPool2d(4)(x).shape == (1, 2, 2, 2)


class TestNorms:
    def test_layernorm_normalizes(self, rng):
        layer = LayerNorm(16)
        out = layer(Tensor(rng.normal(size=(4, 16)) * 5 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_grad(self, rng):
        layer = LayerNorm(8)
        x = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 8)))
        gradient_check(lambda x: layer(x) * w, [x])

    def test_layernorm_3d(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_batchnorm_train_vs_eval(self, rng):
        layer = BatchNorm1d(4)
        x = Tensor(rng.normal(size=(16, 4)) + 10.0)
        out_train = layer(x).data
        assert np.allclose(out_train.mean(axis=0), 0.0, atol=1e-6)
        layer.eval()
        out_eval = layer(x).data
        # Eval uses running stats (only partially updated): different output.
        assert not np.allclose(out_train, out_eval)


class TestActivations:
    @pytest.mark.parametrize(
        "module,fn",
        [
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Tanh(), np.tanh),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (LeakyReLU(0.2), lambda x: np.where(x > 0, x, 0.2 * x)),
        ],
    )
    def test_matches_numpy(self, module, fn, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(module(Tensor(x)).data, fn(x))

    def test_gelu_close_to_exact(self, rng):
        from scipy.stats import norm

        x = rng.normal(size=(100,))
        approx = GELU()(Tensor(x)).data
        exact = x * norm.cdf(x)
        assert np.allclose(approx, exact, atol=5e-3)

    def test_softmax_module(self, rng):
        out = Softmax()(Tensor(rng.normal(size=(2, 5)))).data
        assert np.allclose(out.sum(axis=-1), 1.0)


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        assert np.allclose(layer(x).data, x.data)

    def test_train_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0]
        assert np.allclose(surviving, 2.0)

    def test_p_zero_identity_in_train(self, rng):
        layer = Dropout(0.0)
        x = Tensor(rng.normal(size=(3, 3)))
        assert np.allclose(layer(x).data, x.data)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng=rng)
        out = emb(np.array([1, 2, 2]))
        assert out.shape == (3, 6)
        assert np.allclose(out.data[1], out.data[2])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(4, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([4]))

    def test_gradient_accumulates_for_repeats(self, rng):
        emb = Embedding(5, 3, rng=rng)
        out = emb(np.array([1, 1]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestAttention:
    def test_self_attention_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_cross_attention_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        ctx = Tensor(rng.normal(size=(2, 9, 16)))
        assert attn(x, ctx).shape == (2, 5, 16)

    def test_dim_head_mismatch_raises(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_attention_grad(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(1, 4, 8)))
        gradient_check(lambda x: attn(x) * w, [x], atol=1e-3, rtol=1e-3)


class TestTransformer:
    def test_encoder_layer_shape(self, rng):
        layer = TransformerEncoderLayer(16, 4, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_encoder_stack(self, rng):
        enc = TransformerEncoder(16, 3, 4, rng=rng)
        out = enc(Tensor(rng.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)
        assert len(enc.layers) == 3

    def test_encoder_backward_through_stack(self, rng):
        enc = TransformerEncoder(8, 2, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        enc(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_cross_attention_path(self, rng):
        enc = TransformerEncoder(8, 2, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        ctx = Tensor(rng.normal(size=(1, 6, 8)))
        out_self = enc(x)
        out_cross = enc(x, ctx)
        assert out_cross.shape == out_self.shape
        assert not np.allclose(out_self.data, out_cross.data)
