"""Integration tests for the CDCL trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.continual import Scenario, run_continual, run_continual_multi
from repro.core import CDCLConfig, CDCLTrainer


@pytest.fixture()
def trainer():
    return CDCLTrainer(CDCLConfig.fast(), in_channels=1, image_size=16, rng=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CDCLConfig(embed_dim=10, num_heads=3)
        with pytest.raises(ValueError):
            CDCLConfig(epochs=3, warmup_epochs=3)
        with pytest.raises(ValueError):
            CDCLConfig(distance="hamming")

    def test_presets(self):
        assert CDCLConfig.small().embed_dim == 48
        assert CDCLConfig.large().depth == 3
        assert CDCLConfig.fast(epochs=5).epochs == 5


class TestObserveTask:
    def test_single_task_learns_source(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        assert trainer.tasks_seen == 1
        images, labels = tiny_stream[0].source_train.arrays()
        # Source domain must be essentially solved after one task.
        predictions = trainer.network.predict_til(images, 0)
        assert (predictions == labels).mean() > 0.7

    def test_memory_populated_after_task(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        assert len(trainer.memory) > 0
        record = trainer.memory.all_records()[0]
        assert record.task_id == 0

    def test_memory_rebalances_across_tasks(self, tiny_stream):
        config = CDCLConfig.fast(memory_size=10)
        trainer = CDCLTrainer(config, in_channels=1, image_size=16, rng=0)
        trainer.observe_task(tiny_stream[0])
        first = len(trainer.memory)
        trainer.observe_task(tiny_stream[1])
        assert len(trainer.memory) <= 10
        assert trainer.memory.num_tasks == 2
        assert first <= 10

    def test_logs_collect_diagnostics(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        log = trainer.logs[0]
        assert len(log.epoch_losses) == trainer.config.epochs
        # Adaptation epochs record pseudo-label stats.
        expected_adapt = trainer.config.epochs - trainer.config.warmup_epochs
        assert len(log.pseudo_label_accuracy) == expected_adapt
        assert log.memory_stored > 0

    def test_task_parameters_frozen_after_next_task(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        trainer.observe_task(tiny_stream[1])
        for p in trainer.network.encoder.task_parameters(0):
            assert not p.requires_grad
        for p in trainer.network.encoder.task_parameters(1):
            assert p.requires_grad

    def test_losses_are_finite(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        assert all(np.isfinite(loss) for loss in trainer.logs[0].epoch_losses)


class TestPredictions:
    def test_til_predictions_local(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        images, _ = tiny_stream[0].target_test.arrays()
        out = trainer.predict(images, 0, Scenario.TIL)
        assert set(np.unique(out)).issubset({0, 1})

    def test_cil_predictions_global(self, trainer, tiny_stream):
        trainer.observe_task(tiny_stream[0])
        trainer.observe_task(tiny_stream[1])
        images, _ = tiny_stream[1].target_test.arrays()
        out = trainer.predict_global(images, Scenario.CIL)
        assert out.max() < 4


class TestFullProtocol:
    def test_run_continual_til(self, digit_stream_3tasks):
        trainer = CDCLTrainer(CDCLConfig.fast(), in_channels=1, image_size=16, rng=0)
        result = run_continual(trainer, digit_stream_3tasks, Scenario.TIL)
        assert 0.0 <= result.acc <= 1.0
        assert result.r_matrix.values.shape == (3, 3)

    def test_multi_scenario_consistency(self, digit_stream_3tasks):
        trainer = CDCLTrainer(CDCLConfig.fast(), in_channels=1, image_size=16, rng=0)
        results = run_continual_multi(trainer, digit_stream_3tasks, ["til", "cil"])
        assert trainer.tasks_seen == 3
        assert results[Scenario.TIL].acc >= results[Scenario.CIL].acc - 0.2


class TestAblationFlags:
    @pytest.mark.parametrize(
        "flag",
        ["use_cil_loss", "use_til_loss", "use_rehearsal_loss", "use_cross_attention"],
    )
    def test_each_ablation_runs(self, flag, tiny_stream):
        config = CDCLConfig.fast(**{flag: False})
        trainer = CDCLTrainer(config, in_channels=1, image_size=16, rng=0)
        trainer.observe_task(tiny_stream[0])
        trainer.observe_task(tiny_stream[1])
        assert trainer.tasks_seen == 2

    def test_no_til_loss_leaves_til_head_at_init(self, tiny_stream):
        """Without the TIL block the TIL head receives no gradient.

        Two trainers share the same seed, so their heads start identical;
        only the one with the TIL loss enabled should move its head.
        """
        ablated = CDCLTrainer(
            CDCLConfig.fast(use_til_loss=False), in_channels=1, image_size=16, rng=0
        )
        full = CDCLTrainer(CDCLConfig.fast(), in_channels=1, image_size=16, rng=0)
        ablated.observe_task(tiny_stream[0])
        full.observe_task(tiny_stream[0])
        key = "til_heads.0.weight"
        ablated_head = ablated.network.state_dict()[key]
        full_head = full.network.state_dict()[key]
        # Identical init + no TIL gradient => the ablated head stayed put
        # while the full model's head moved away from it.
        assert not np.allclose(ablated_head, full_head)
        fresh = CDCLTrainer(
            CDCLConfig.fast(use_til_loss=False), in_channels=1, image_size=16, rng=0
        )
        fresh.network.add_task(tiny_stream[0].num_classes)
        assert np.allclose(fresh.network.state_dict()[key], ablated_head)

    def test_reproducibility_same_seed(self, tiny_stream):
        accs = []
        for _ in range(2):
            trainer = CDCLTrainer(CDCLConfig.fast(), in_channels=1, image_size=16, rng=7)
            result = run_continual(trainer, tiny_stream, Scenario.TIL)
            accs.append(result.acc)
        assert accs[0] == accs[1]
