"""Property-based tests for the bound algebra (Theorems 1-3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import ContinualBound, TaskBoundTerms, continual_bound

errors = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
divergences = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)


@settings(max_examples=50, deadline=None)
@given(
    source_error=errors,
    target_error=errors,
    divergence=divergences,
)
def test_property_bound_terms_consistency(source_error, target_error, divergence):
    """bound = eps_S + lambda; slack = bound - eps_T; both follow directly."""
    terms = TaskBoundTerms(0, source_error, target_error, divergence)
    assert terms.bound == source_error + divergence
    assert np.isclose(terms.slack, terms.bound - target_error)


@settings(max_examples=30, deadline=None)
@given(
    n_tasks=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_property_continual_bound_additivity(n_tasks, seed):
    """The Theorem 3 RHS is exactly the sum of its parts."""
    rng = np.random.default_rng(seed)
    per_task = [
        TaskBoundTerms(i, rng.random(), rng.random(), 2 * rng.random())
        for i in range(n_tasks)
    ]
    k = 3
    memory, raw = [], []
    for _ in range(n_tasks - 1):
        memory.append(rng.random(k) + 0.01)
        raw.append(rng.random(k) + 0.01)
    bound = continual_bound(per_task, memory, raw)
    manual_rhs = sum(t.source_error + t.divergence for t in per_task) + sum(
        bound.kl_terms
    )
    assert np.isclose(bound.bound, manual_rhs)
    assert np.isclose(
        bound.total_target_error, sum(t.target_error for t in per_task)
    )


@settings(max_examples=30, deadline=None)
@given(
    n_tasks=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_property_kl_terms_nonnegative(n_tasks, seed):
    """KL divergence terms are always >= 0 (Gibbs' inequality)."""
    rng = np.random.default_rng(seed)
    per_task = [TaskBoundTerms(i, 0.1, 0.1, 0.1) for i in range(n_tasks)]
    memory = [rng.random(4) + 0.01 for _ in range(n_tasks - 1)]
    raw = [rng.random(4) + 0.01 for _ in range(n_tasks - 1)]
    bound = continual_bound(per_task, memory, raw)
    assert all(k >= -1e-12 for k in bound.kl_terms)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_bound_monotone_in_divergence(seed):
    """Increasing any lambda_i can only loosen (raise) the bound."""
    rng = np.random.default_rng(seed)
    base_div = float(rng.random())
    low = ContinualBound(
        per_task=[TaskBoundTerms(0, 0.2, 0.5, base_div)], kl_terms=[]
    )
    high = ContinualBound(
        per_task=[TaskBoundTerms(0, 0.2, 0.5, base_div + 0.5)], kl_terms=[]
    )
    assert high.bound >= low.bound
    # holds() can only flip from False to True as the bound loosens.
    assert (not low.holds) or high.holds
