"""Deprecation shims on the old ``repro.engine`` entry points.

Contract: every pre-Session free function keeps working through
``repro.engine`` — same objects, same behavior — but each access emits
a :class:`DeprecationWarning` naming the Session replacement.  The
shared vocabulary (``RunSpec``, ``RunResult``, registries, ``cache``)
stays warning-free.
"""

import warnings

import pytest

import repro.engine as engine
from repro.data.synthetic import mnist_usps
from repro.engine.registry import SCENARIOS, register_scenario

TINY = dict(samples_per_class=4, test_samples_per_class=2, epochs=2, warmup_epochs=1)

if "_test/deprecation_digits" not in SCENARIOS:

    @register_scenario("_test/deprecation_digits", description="shim tests")
    def _dep_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=seed
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))


DEPRECATED_NAMES = (
    "run_one",
    "run_pair_cells",
    "run_stream_pair",
    "run_method_on_stream",
    "spec_for",
    "checkpoint_path",
    "has_checkpoint",
    "load_checkpoint",
    "run_specs",
    "run_seed_sweep",
    "map_jobs",
    "derive_seeds",
)


class TestShimsWarn:
    @pytest.mark.parametrize("name", DEPRECATED_NAMES)
    def test_every_entry_point_warns_and_resolves(self, name):
        with pytest.warns(DeprecationWarning, match=f"repro.engine.{name}"):
            shim = getattr(engine, name)
        assert callable(shim)

    def test_warning_names_the_session_replacement(self):
        with pytest.warns(DeprecationWarning, match="repro.api.Session"):
            engine.run_one  # noqa: B018

    def test_from_import_warns_too(self):
        with pytest.warns(DeprecationWarning, match="spec_for"):
            from repro.engine import spec_for  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            engine.definitely_not_an_api


class TestSharedVocabularyStaysSilent:
    @pytest.mark.parametrize(
        "name",
        [
            "RunSpec",
            "RunResult",
            "PairResult",
            "MultiSeedResult",
            "SeedStatistics",
            "METHODS",
            "SCENARIOS",
            "cache",
            "get_profile",
            "ExperimentProfile",
            "register_scenario",
            "DEFAULT_EVAL_SCENARIOS",
        ],
    )
    def test_no_warning(self, name):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            getattr(engine, name)


class TestOldCallSitesStillWork:
    """The shims forward to the real implementation, not a copy."""

    def tiny_spec(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return engine.spec_for(
                "FineTune",
                "_test/deprecation_digits",
                "smoke",
                profile_overrides=dict(TINY),
            )

    def test_run_one_still_runs_a_cell(self):
        spec = self.tiny_spec()
        with pytest.warns(DeprecationWarning):
            result = engine.run_one(spec)
        assert result.method == "FineTune"
        assert not result.cached
        # And the cell landed in the same cache the Session reads.
        from repro.api import Session

        again = Session().execute([spec])
        assert again[0].cached

    def test_checkpoint_shims_round_trip(self):
        spec = self.tiny_spec()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            engine.run_one(spec, checkpoint=True)
            assert engine.has_checkpoint(spec)
            method = engine.load_checkpoint(spec)
        assert method.tasks_seen == 2

    def test_shim_is_the_same_object_as_the_implementation(self):
        from repro.engine import runner

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert engine.run_one is runner.run_one
            assert engine.spec_for is runner.spec_for
