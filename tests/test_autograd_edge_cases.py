"""Edge-case coverage for the autograd engine: shapes, stability, and
behaviours not exercised by the main gradient-check suite."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops, zeros_like, ones_like
from repro.autograd.grad_check import numerical_gradient


class TestScalarAndEmptyShapes:
    def test_scalar_tensor_ops(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + 2 * x
        y.backward()
        assert np.allclose(x.grad, 8.0)

    def test_zero_dim_reduction(self):
        x = Tensor(5.0, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_zeros_ones_like(self):
        x = Tensor(np.ones((2, 3)))
        assert zeros_like(x).shape == (2, 3)
        assert ones_like(x).data.sum() == 6


class TestNumericalStability:
    def test_log_softmax_large_logits(self):
        x = Tensor(np.array([[1e4, -1e4, 0.0]]), requires_grad=True)
        out = ops.log_softmax(x)
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_logsumexp_keepdims(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        out = ops.logsumexp(x, axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_exp_overflow_handling(self):
        # exp of large values produces inf but must not crash backward.
        x = Tensor(np.array([700.0]), requires_grad=True)
        y = ops.exp(x)
        assert np.isposinf(y.data).any() or y.data[0] > 1e300

    def test_clip_exact_boundaries(self):
        x = Tensor(np.array([-1.0, 0.0, 1.0]), requires_grad=True)
        out = ops.clip(x, -1.0, 1.0)
        out.sum().backward()
        # Boundary values are inside the clip range (>= and <=).
        assert np.allclose(x.grad, [1.0, 1.0, 1.0])


class TestBroadcastingGradients:
    @pytest.mark.parametrize(
        "shape_a,shape_b",
        [((3, 1), (1, 4)), ((1,), (5, 5)), ((2, 1, 3), (4, 1)), ((), (3, 3))],
    )
    def test_mul_broadcast_shapes(self, shape_a, shape_b):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=shape_a), requires_grad=True)
        b = Tensor(rng.normal(size=shape_b), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == shape_a
        assert b.grad.shape == shape_b

    def test_broadcast_grad_values_match_numeric(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        (a * b).sum().backward()
        analytic = a.grad.copy()
        numeric = numerical_gradient(lambda a, b: a * b, [a, b], wrt=0)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestGraphBehaviours:
    def test_shared_subexpression_counted_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        shared = x * 3
        y = shared + shared  # 6x -> grad 6
        y.sum().backward()
        assert np.allclose(x.grad, [6.0])

    def test_long_fanout(self):
        x = Tensor([1.0], requires_grad=True)
        total = Tensor([0.0])
        for _ in range(20):
            total = total + x * 2
        total.sum().backward()
        assert np.allclose(x.grad, [40.0])

    def test_backward_twice_rebuilds_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x
        y.sum().backward()
        first = x.grad.copy()
        y2 = x * x
        y2.sum().backward()
        assert np.allclose(x.grad, 2 * first)

    def test_grad_dtype_matches_data(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad.dtype == x.data.dtype


class TestConcatStackEdges:
    def test_concat_single_tensor(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.concat([x], axis=0)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_concat_unequal_sizes(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        out = ops.concat([a, b], axis=0)
        assert out.shape == (5, 3)
        out.sum().backward()
        assert a.grad.shape == (1, 3)
        assert b.grad.shape == (4, 3)

    def test_stack_negative_axis(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.zeros((2, 3)))
        assert ops.stack([a, b], axis=-1).shape == (2, 3, 2)

    def test_pad_with_constant(self):
        x = Tensor(np.zeros((2, 2)))
        out = ops.pad(x, ((1, 1), (1, 1)), constant=7.0)
        assert out.data[0, 0] == 7.0
        assert out.shape == (4, 4)


class TestWhereAndMasks:
    def test_where_condition_tensor(self):
        cond = Tensor(np.array([True, False]))
        a = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        out = ops.where(cond, a, b)
        assert np.allclose(out.data, [1.0, 2.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_maximum_tie_break_goes_to_first(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        ops.maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [1.0])
        assert np.allclose(b.grad, [0.0])
