"""Gradient checks and semantics for every autograd primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, gradient_check, ops


def _t(shape, rng, scale=1.0, positive=False):
    data = rng.normal(size=shape) * scale
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestArithmeticGrads:
    def test_add(self, rng):
        gradient_check(ops.add, [_t((3, 4), rng), _t((3, 4), rng)])

    def test_add_broadcast(self, rng):
        gradient_check(ops.add, [_t((3, 4), rng), _t((4,), rng)])

    def test_sub(self, rng):
        gradient_check(ops.sub, [_t((3, 4), rng), _t((3, 4), rng)])

    def test_mul(self, rng):
        gradient_check(ops.mul, [_t((3, 4), rng), _t((3, 4), rng)])

    def test_mul_broadcast_scalar(self, rng):
        gradient_check(ops.mul, [_t((3, 4), rng), _t((), rng)])

    def test_div(self, rng):
        gradient_check(ops.div, [_t((3, 4), rng), _t((3, 4), rng, positive=True)])

    def test_neg(self, rng):
        gradient_check(ops.neg, [_t((5,), rng)])

    def test_pow(self, rng):
        gradient_check(lambda a: ops.pow(a, 3), [_t((4,), rng, positive=True)])

    def test_pow_rejects_tensor_exponent(self, rng):
        with pytest.raises(TypeError):
            ops.pow(_t((2,), rng), _t((2,), rng))


class TestMatmulGrads:
    def test_2d(self, rng):
        gradient_check(ops.matmul, [_t((3, 4), rng), _t((4, 5), rng)])

    def test_batched(self, rng):
        gradient_check(ops.matmul, [_t((2, 3, 4), rng), _t((2, 4, 5), rng)])

    def test_4d_batched(self, rng):
        gradient_check(ops.matmul, [_t((2, 2, 3, 4), rng), _t((2, 2, 4, 3), rng)])

    def test_vec_vec(self, rng):
        gradient_check(ops.matmul, [_t((4,), rng), _t((4,), rng)])

    def test_mat_vec(self, rng):
        gradient_check(ops.matmul, [_t((3, 4), rng), _t((4,), rng)])

    def test_vec_mat(self, rng):
        gradient_check(ops.matmul, [_t((3,), rng), _t((3, 4), rng)])


class TestElementwiseGrads:
    def test_exp(self, rng):
        gradient_check(ops.exp, [_t((3, 3), rng)])

    def test_log(self, rng):
        gradient_check(ops.log, [_t((3, 3), rng, positive=True)])

    def test_sqrt(self, rng):
        gradient_check(ops.sqrt, [_t((3, 3), rng, positive=True)])

    def test_tanh(self, rng):
        gradient_check(ops.tanh, [_t((3, 3), rng)])

    def test_abs(self, rng):
        gradient_check(ops.abs, [_t((3, 3), rng)])

    def test_relu(self, rng):
        gradient_check(ops.relu, [_t((3, 3), rng)])

    def test_leaky_relu(self, rng):
        gradient_check(lambda a: ops.leaky_relu(a, 0.1), [_t((3, 3), rng)])

    def test_gelu(self, rng):
        gradient_check(ops.gelu, [_t((3, 3), rng)])

    def test_sigmoid(self, rng):
        gradient_check(ops.sigmoid, [_t((3, 3), rng)])

    def test_clip(self, rng):
        gradient_check(lambda a: ops.clip(a, -0.5, 0.5), [_t((4, 4), rng)])

    def test_maximum(self, rng):
        gradient_check(ops.maximum, [_t((3, 3), rng), _t((3, 3), rng)])

    def test_minimum(self, rng):
        gradient_check(ops.minimum, [_t((3, 3), rng), _t((3, 3), rng)])

    def test_where(self, rng):
        cond = rng.random((3, 3)) > 0.5
        gradient_check(lambda a, b: ops.where(cond, a, b), [_t((3, 3), rng), _t((3, 3), rng)])


class TestReductionGrads:
    def test_sum_all(self, rng):
        gradient_check(lambda a: ops.sum(a), [_t((3, 4), rng)])

    def test_sum_axis(self, rng):
        gradient_check(lambda a: ops.sum(a, axis=1), [_t((3, 4), rng)])

    def test_sum_keepdims(self, rng):
        gradient_check(lambda a: ops.sum(a, axis=0, keepdims=True), [_t((3, 4), rng)])

    def test_mean_all(self, rng):
        gradient_check(lambda a: ops.mean(a), [_t((3, 4), rng)])

    def test_mean_axis_tuple(self, rng):
        gradient_check(lambda a: ops.mean(a, axis=(0, 2)), [_t((2, 3, 4), rng)])

    def test_var(self, rng):
        gradient_check(lambda a: ops.var(a, axis=1), [_t((3, 4), rng)])

    def test_max_axis(self, rng):
        gradient_check(lambda a: ops.max(a, axis=1), [_t((3, 4), rng)])

    def test_min_all(self, rng):
        gradient_check(lambda a: ops.min(a), [_t((3, 4), rng)])

    def test_max_tie_splits_gradient(self):
        x = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        ops.max(x, axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = ops.softmax(_t((4, 6), rng))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_grad(self, rng):
        # Use a non-uniform downstream weighting, since sum(softmax)=const.
        w = rng.normal(size=(4, 6))
        gradient_check(lambda a: ops.softmax(a) * Tensor(w), [_t((4, 6), rng)])

    def test_log_softmax_grad(self, rng):
        w = rng.normal(size=(4, 6))
        gradient_check(lambda a: ops.log_softmax(a) * Tensor(w), [_t((4, 6), rng)])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = _t((3, 5), rng)
        assert np.allclose(
            ops.log_softmax(x).data, np.log(ops.softmax(x).data), atol=1e-10
        )

    def test_softmax_is_shift_invariant(self, rng):
        x = rng.normal(size=(2, 5))
        a = ops.softmax(Tensor(x)).data
        b = ops.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_softmax_extreme_values_stable(self):
        x = Tensor([[1000.0, -1000.0]])
        out = ops.softmax(x).data
        assert np.isfinite(out).all()
        assert np.allclose(out, [[1.0, 0.0]])

    def test_logsumexp_grad(self, rng):
        gradient_check(lambda a: ops.logsumexp(a, axis=1), [_t((3, 5), rng)])

    def test_logsumexp_value(self, rng):
        x = rng.normal(size=(3, 5))
        expected = np.log(np.exp(x).sum(axis=1))
        assert np.allclose(ops.logsumexp(Tensor(x), axis=1).data, expected)


class TestShapeOpGrads:
    def test_reshape(self, rng):
        gradient_check(lambda a: ops.reshape(a, (4, 3)), [_t((3, 4), rng)])

    def test_transpose(self, rng):
        gradient_check(lambda a: ops.transpose(a, (2, 0, 1)), [_t((2, 3, 4), rng)])

    def test_getitem_fancy(self, rng):
        idx = np.array([0, 2, 2])
        gradient_check(lambda a: ops.getitem(a, idx), [_t((4, 3), rng)])

    def test_concat(self, rng):
        gradient_check(
            lambda a, b: ops.concat([a, b], axis=1), [_t((2, 3), rng), _t((2, 4), rng)]
        )

    def test_stack(self, rng):
        gradient_check(
            lambda a, b: ops.stack([a, b], axis=0), [_t((2, 3), rng), _t((2, 3), rng)]
        )

    def test_pad(self, rng):
        gradient_check(lambda a: ops.pad(a, ((1, 1), (0, 2))), [_t((2, 3), rng)])

    def test_embedding_lookup(self, rng):
        idx = np.array([0, 1, 1, 3])
        gradient_check(lambda w: ops.embedding_lookup(w, idx), [_t((5, 4), rng)])

    def test_take_along_axis(self, rng):
        idx = np.array([[0], [2], [1]])
        gradient_check(lambda a: ops.take_along_axis(a, idx, axis=1), [_t((3, 4), rng)])

    def test_dropout_mask_apply(self, rng):
        mask = rng.random((3, 4)) > 0.5
        gradient_check(lambda a: ops.dropout_mask_apply(a, mask, 2.0), [_t((3, 4), rng)])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_property_mul_grad_is_other_operand(rows, cols, seed):
    """d(sum(a*b))/da == b for any shapes (property test)."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(rows, cols)))
    (a * b).sum().backward()
    assert np.allclose(a.grad, b.data)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_property_softmax_simplex(n, seed):
    """Softmax outputs lie on the probability simplex for any input."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(3, n)) * 10)
    out = ops.softmax(x).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)
