"""Tests for attention-map introspection utilities."""

import numpy as np
import pytest

from repro.core import (
    CDCLConfig,
    CDCLNetwork,
    attention_entropy,
    attention_maps,
    task_key_similarity,
)


@pytest.fixture()
def network():
    net = CDCLNetwork(CDCLConfig.fast(depth=2), in_channels=1, image_size=16, rng=0)
    net.add_task(2)
    net.add_task(2)
    return net


@pytest.fixture()
def images(rng):
    return rng.normal(size=(3, 1, 16, 16))


class TestAttentionMaps:
    def test_one_map_per_layer(self, network, images):
        maps = attention_maps(network, images, task_id=0)
        assert len(maps) == network.config.depth

    def test_map_shapes_and_rows_normalized(self, network, images):
        maps = attention_maps(network, images, task_id=0)
        n = network.tokenizer.seq_len
        for weights in maps:
            assert weights.shape == (3, network.config.num_heads, n, n)
            assert np.allclose(weights.sum(axis=-1), 1.0)
            assert np.all(weights >= 0)

    def test_maps_differ_between_tasks(self, network, images):
        a = attention_maps(network, images, task_id=0)[0]
        b = attention_maps(network, images, task_id=1)[0]
        assert not np.allclose(a, b)

    def test_cross_attention_context_changes_first_layer(self, network, images, rng):
        context = rng.normal(size=(3, 1, 16, 16))
        plain = attention_maps(network, images, task_id=0)
        mixed = attention_maps(network, images, task_id=0, context_images=context)
        assert not np.allclose(plain[0], mixed[0])


class TestAttentionEntropy:
    def test_uniform_attention_max_entropy(self):
        n = 8
        uniform = np.full((1, 1, n, n), 1.0 / n)
        entropy = attention_entropy(uniform)
        assert np.allclose(entropy, np.log(n))

    def test_peaked_attention_near_zero_entropy(self):
        n = 8
        peaked = np.zeros((1, 1, n, n))
        peaked[..., 0] = 1.0
        assert np.allclose(attention_entropy(peaked), 0.0, atol=1e-8)

    def test_shape(self, network, images):
        weights = attention_maps(network, images, task_id=0)[0]
        entropy = attention_entropy(weights)
        assert entropy.shape == weights.shape[:-1]


class TestTaskKeySimilarity:
    def test_shape_and_diagonal(self, network):
        sim = task_key_similarity(network)
        assert sim.shape == (2, 2)
        assert np.allclose(np.diag(sim), 1.0)

    def test_symmetric_and_bounded(self, network):
        sim = task_key_similarity(network)
        assert np.allclose(sim, sim.T)
        assert np.all(np.abs(sim) <= 1.0 + 1e-9)

    def test_independent_inits_weakly_similar(self, network):
        sim = task_key_similarity(network)
        # Fresh random key projections should be nearly orthogonal.
        assert abs(sim[0, 1]) < 0.5
