"""Additional DataLoader / memory sampling edge cases."""

import numpy as np

from repro.continual import RehearsalMemory
from repro.data import ArrayDataset, DataLoader


def make_dataset(n=5):
    return ArrayDataset(np.zeros((n, 1, 2, 2)), np.arange(n) % 2)


class TestLoaderEdges:
    def test_batch_larger_than_dataset(self):
        loader = DataLoader(make_dataset(3), batch_size=10)
        batches = list(loader)
        assert len(batches) == 1
        assert len(batches[0][0]) == 3

    def test_single_sample_dataset(self):
        loader = DataLoader(make_dataset(1), batch_size=4)
        xs, ys = next(iter(loader))
        assert xs.shape[0] == 1

    def test_drop_last_with_exact_multiple(self):
        loader = DataLoader(make_dataset(8), batch_size=4, drop_last=True)
        assert len(list(loader)) == 2

    def test_len_matches_iteration(self):
        for n, bs, drop in [(7, 3, False), (7, 3, True), (6, 3, False)]:
            loader = DataLoader(make_dataset(n), batch_size=bs, drop_last=drop)
            assert len(loader) == len(list(loader))


class TestMemorySamplingEdges:
    def _filled(self, capacity=6, n=4):
        memory = RehearsalMemory(capacity)
        memory.store_task(
            0,
            x_source=np.zeros((n, 1, 2, 2)),
            x_target=np.zeros((n, 1, 2, 2)),
            y_source=np.arange(n),
            logits_source=np.zeros((n, 2)),
            logits_target=np.zeros((n, 2)),
            confidence=np.linspace(0, 1, n),
        )
        return memory

    def test_sample_more_than_stored_replaces(self):
        memory = self._filled(n=3)
        batch = memory.sample(10, rng=0)
        assert len(batch) == 10  # sampled with replacement

    def test_sample_exact_count_without_replacement(self):
        memory = self._filled(n=4)
        batch = memory.sample(4, rng=0)
        assert len(batch) == 4

    def test_records_for_missing_task_empty(self):
        memory = self._filled()
        assert memory.records_for_task(5) == []

    def test_capacity_one_keeps_best(self):
        memory = RehearsalMemory(1)
        memory.store_task(
            0,
            x_source=np.zeros((3, 1, 2, 2)),
            x_target=np.zeros((3, 1, 2, 2)),
            y_source=np.arange(3),
            logits_source=np.zeros((3, 2)),
            logits_target=np.zeros((3, 2)),
            confidence=np.array([0.1, 0.9, 0.5]),
        )
        assert len(memory) == 1
        assert memory.all_records()[0].confidence == 0.9
