"""Tests for multi-seed aggregation and result persistence."""

import numpy as np
import pytest

from repro.continual import Scenario
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import mnist_usps
from repro.experiments import (
    MultiSeedResult,
    SeedStatistics,
    load_results,
    markdown_table,
    pair_result_to_dict,
    run_multi_seed,
    save_results,
)
from repro.experiments.reporting import multiseed_markdown


def tiny_stream_factory(seed: int):
    stream = mnist_usps(
        "mnist->usps", samples_per_class=6, test_samples_per_class=4, rng=seed
    )
    stream.tasks = stream.tasks[:2]
    return stream


def tiny_method_factory(seed: int):
    return CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=seed)


class TestSeedStatistics:
    def test_mean_std(self):
        stat = SeedStatistics(values=[0.2, 0.4, 0.6])
        assert stat.mean == pytest.approx(0.4)
        assert stat.std == pytest.approx(np.std([0.2, 0.4, 0.6]))
        assert stat.n == 3

    def test_empty_is_nan(self):
        stat = SeedStatistics()
        assert np.isnan(stat.mean)

    def test_repr(self):
        assert "n=2" in repr(SeedStatistics(values=[0.1, 0.2]))


class TestRunMultiSeed:
    def test_aggregates_over_seeds(self):
        result = run_multi_seed(
            tiny_method_factory, tiny_stream_factory, seeds=[0, 1]
        )
        assert result.acc[Scenario.TIL].n == 2
        assert result.acc[Scenario.CIL].n == 2
        assert 0.0 <= result.acc[Scenario.TIL].mean <= 1.0
        assert result.method == "CDCL"

    def test_empty_seeds_raise(self):
        with pytest.raises(ValueError):
            run_multi_seed(tiny_method_factory, tiny_stream_factory, seeds=[])

    def test_keep_runs(self):
        result = run_multi_seed(
            tiny_method_factory,
            tiny_stream_factory,
            seeds=[0],
            scenarios=["til"],
            keep_runs=True,
        )
        assert len(result.runs) == 1
        assert Scenario.TIL in result.runs[0]

    def test_summary_serializable(self):
        result = run_multi_seed(
            tiny_method_factory, tiny_stream_factory, seeds=[0], scenarios=["til"]
        )
        summary = result.summary()
        assert summary["method"] == "CDCL"
        assert "acc_til" in summary


class TestReporting:
    def test_pair_result_roundtrip(self, tmp_path):
        from repro.experiments import get_profile, run_pair

        profile = get_profile("smoke")
        stream = tiny_stream_factory(0)
        pair = run_pair(stream, profile, methods=("CDCL",), include_tvt=False)
        data = pair_result_to_dict(pair)
        path = save_results(data, tmp_path / "results.json")
        loaded = load_results(path)
        assert loaded["stream"] == stream.name
        assert "CDCL" in loaded["methods"]
        r = loaded["methods"]["CDCL"]["til"]["r_matrix"]
        assert r[0][1] is None  # NaN encoded as null
        assert 0.0 <= loaded["methods"]["CDCL"]["til"]["acc"] <= 1.0

    def test_markdown_table_layout(self):
        table = markdown_table({"CDCL": {"A->W": 0.5, "D->W": 0.75}})
        lines = table.splitlines()
        assert lines[0] == "| method | A->W | D->W |"
        assert "| CDCL | 0.50 | 0.75 |" in table

    def test_markdown_handles_nan(self):
        table = markdown_table({"X": {"col": float("nan")}})
        assert "-" in table.splitlines()[2]

    def test_markdown_empty(self):
        assert markdown_table({}) == ""

    def test_multiseed_markdown(self):
        result = MultiSeedResult(
            method="CDCL",
            stream="s",
            seeds=(0, 1),
            acc={Scenario.TIL: SeedStatistics(values=[0.5, 0.7])},
            fgt={Scenario.TIL: SeedStatistics(values=[0.1, 0.2])},
        )
        table = multiseed_markdown([result])
        assert "CDCL" in table and "ACC TIL" in table
