"""The precision policy, end to end.

Contract under test:

* the policy knobs (default, setter, context manager, ``REPRO_DTYPE``)
  and every constructor that must honor them;
* kernel routing — float32 through BLAS matmul, float64 through the
  historical einsum order — agrees across dtypes within documented
  tolerance, and gradient checking stays float64 under a float32
  policy;
* the engine threads dtype through cache identity (float32 and
  float64 cells never collide) and through checkpoint save/load for
  every method family (CDCL / DER / CDTrans / TVT);
* im2col workspaces are reused, never aliased into results.
"""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    arange,
    conv2d,
    default_dtype,
    get_default_dtype,
    gradient_check,
    max_pool2d,
    no_grad,
    ones,
    resolve_dtype,
    set_default_dtype,
    zeros,
)
from repro.autograd import ops
from repro.autograd.conv import clear_workspaces, col2im, im2col, workspace_stats
from repro.autograd.dtype import _dtype_from_env
from repro.data.synthetic import mnist_usps
from repro.engine.profiles import get_profile
from repro.engine.registry import register_scenario
from repro.engine.runner import RunSpec
from repro.nn import functional as F
from repro.nn import init


@pytest.fixture(autouse=True)
def _restore_policy():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestPolicyKnobs:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32

    def test_set_and_restore(self):
        previous = set_default_dtype("float64")
        assert get_default_dtype() == np.float64
        set_default_dtype(previous)
        assert get_default_dtype() == previous

    def test_context_manager_scopes_and_restores(self):
        with default_dtype("float64") as active:
            assert active == np.float64
            assert Tensor([1.0]).dtype == np.float64
        assert get_default_dtype() == np.float32

    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError, match="unsupported compute dtype"):
            resolve_dtype("float16")
        with pytest.raises(ValueError, match="unsupported compute dtype"):
            set_default_dtype(np.int64)

    def test_env_override(self):
        assert _dtype_from_env({"REPRO_DTYPE": "float64"}) == np.float64
        assert _dtype_from_env({}) == np.float32
        with pytest.raises(ValueError, match="REPRO_DTYPE"):
            _dtype_from_env({"REPRO_DTYPE": "float16"})

    def test_profile_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float64")
        assert get_profile("smoke").dtype == "float64"
        # An explicit override still wins over the environment.
        assert get_profile("smoke", dtype="float32").dtype == "float32"


class TestConstructorsHonorPolicy:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_tensor_and_constructors(self, dtype):
        with default_dtype(dtype):
            expected = np.dtype(dtype)
            assert Tensor(np.ones(3, dtype=np.float64)).dtype == expected
            assert zeros((2, 2)).dtype == expected
            assert ones(4).dtype == expected
            assert arange(5).dtype == expected

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_init_schemes(self, dtype):
        with default_dtype(dtype):
            expected = np.dtype(dtype)
            assert init.zeros((2, 3)).dtype == expected
            assert init.constant((2,), 3.0).dtype == expected
            assert init.xavier_uniform((4, 4), rng=0).dtype == expected
            assert init.kaiming_normal((4, 4), rng=0).dtype == expected
            assert init.trunc_normal((4, 4), rng=0).dtype == expected

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_one_hot_and_chunked_apply(self, dtype):
        with default_dtype(dtype):
            expected = np.dtype(dtype)
            assert F.one_hot(np.array([0, 2]), 3).dtype == expected
            empty = F.chunked_apply(lambda x: Tensor(x), np.empty((0, 4)), 8, out_dim=7)
            assert empty.shape == (0, 7)
            assert empty.dtype == expected


class TestModuleAstype:
    def test_astype_casts_params_and_grads_in_place(self):
        from repro.nn.linear import Linear

        with default_dtype("float32"):
            layer = Linear(4, 3, rng=0)
            out = layer(Tensor(np.ones((2, 4))))
            out.sum().backward()
        params = layer.parameters()
        assert all(p.dtype == np.float32 for p in params)
        assert layer.astype("float64") is layer
        assert all(p.dtype == np.float64 for p in params)
        assert all(p.grad is None or p.grad.dtype == np.float64 for p in params)
        with pytest.raises(ValueError, match="unsupported compute dtype"):
            layer.astype("int32")


class TestLossGather:
    def test_cross_entropy_matches_dense_one_hot(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(6, 5)), requires_grad=True)
        labels = rng.integers(0, 5, size=6)
        loss = F.cross_entropy(logits, labels)
        # Dense reference: the formulation the gather replaced.
        log_probs = ops.log_softmax(Tensor(logits.data), axis=-1)
        dense = -(log_probs * Tensor(F.one_hot(labels, 5))).sum(axis=-1).mean()
        assert loss.item() == pytest.approx(dense.item(), rel=1e-6)
        loss.backward()
        assert logits.grad is not None and logits.grad.shape == logits.shape

    def test_cross_entropy_rejects_bad_labels(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="labels out of range"):
            F.cross_entropy(logits, np.array([0, 3]))

    def test_nll_loss_matches_cross_entropy(self):
        rng = np.random.default_rng(1)
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = rng.integers(0, 3, size=4)
        ce = F.cross_entropy(logits, labels).item()
        nll = F.nll_loss(ops.log_softmax(logits, axis=-1), labels).item()
        assert ce == pytest.approx(nll, rel=1e-6)


class TestKernelRouting:
    def test_conv_dtypes_agree_within_tolerance(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 10, 10))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.2
        b = rng.normal(size=(4,))
        with default_dtype("float64"):
            ref = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=2, padding=1).data
        with default_dtype("float32"):
            fast = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=2, padding=1).data
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, ref, rtol=1e-4, atol=1e-5)

    def test_grad_check_runs_float64_under_float32_policy(self):
        rng = np.random.default_rng(3)
        with default_dtype("float32"):
            x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
            w = Tensor(rng.normal(size=(4, 3, 3, 3)) * 0.2, requires_grad=True)
            assert x.dtype == np.float32
            assert gradient_check(lambda x, w: conv2d(x, w, padding=1), [x, w])
            # The check upcast its inputs; the ambient policy is intact.
            assert x.dtype == np.float64
            assert get_default_dtype() == np.float32

    def test_matmul_bt_matches_transpose_matmul(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(2, 3, 4, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3, 6, 5)), requires_grad=True)
        fused = ops.matmul_bt(a, b)
        legacy = ops.matmul(Tensor(a.data), Tensor(b.data).transpose((0, 1, 3, 2)))
        np.testing.assert_array_equal(fused.data, legacy.data)
        assert gradient_check(lambda a, b: ops.matmul_bt(a, b), [a, b])

    def test_matmul_bt_rejects_vectors(self):
        with pytest.raises(ValueError, match="ndim >= 2"):
            ops.matmul_bt(Tensor(np.ones(3)), Tensor(np.ones((2, 3))))


class TestWorkspaces:
    def test_inference_conv_reuses_buffers(self):
        rng = np.random.default_rng(5)
        with default_dtype("float32"):
            x = Tensor(rng.normal(size=(4, 3, 12, 12)))
            w = Tensor(rng.normal(size=(8, 3, 3, 3)))
            clear_workspaces()
            with no_grad():
                first = conv2d(x, w, padding=1)
                census = workspace_stats()
                second = conv2d(x, w, padding=1)
            assert census["buffers"] > 0
            assert workspace_stats() == census  # no new allocations
            np.testing.assert_array_equal(first.data, second.data)
            assert clear_workspaces() > 0
            cleared = workspace_stats()
            assert (cleared["buffers"], cleared["bytes"]) == (0, 0)
            assert cleared["by_shape"] == {}
            # The peak survives clearing: it reports the process high
            # water mark, not the current residency.
            assert cleared["high_water_bytes"] >= census["bytes"]

    def test_pool_training_results_do_not_alias_workspaces(self):
        rng = np.random.default_rng(6)
        with default_dtype("float32"):
            x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
            out1 = max_pool2d(x, 2)
            snapshot = out1.data.copy()
            # A second pool of the same geometry reuses the unfold
            # workspace; the first result must be unaffected.
            max_pool2d(Tensor(rng.normal(size=(2, 3, 8, 8))), 2)
            np.testing.assert_array_equal(out1.data, snapshot)
            out1.sum().backward()
            grad_snapshot = x.grad.copy()
            y = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
            max_pool2d(y, 2).sum().backward()
            np.testing.assert_array_equal(x.grad, grad_snapshot)

    def test_workspace_pool_is_byte_bounded_lru(self, monkeypatch):
        from repro.autograd import conv as conv_mod

        clear_workspaces()
        monkeypatch.setattr(conv_mod, "_MAX_WORKSPACE_BYTES", 4096)
        # Each buffer is 1 KiB; the pool must hold the most recent four
        # and evict oldest-first, never wholesale.
        for index in range(8):
            conv_mod._workspace(f"test{index}", (256,), np.float32)
        census = workspace_stats()
        assert (census["buffers"], census["bytes"]) == (4, 4096)
        assert len(census["by_shape"]) == 4
        assert all(size == 1024 for size in census["by_shape"].values())
        # Re-requesting a resident shape is a hit (no growth) and
        # refreshes its LRU position.
        resident = conv_mod._workspace("test7", (256,), np.float32)
        assert workspace_stats() == census
        assert conv_mod._workspace("test7", (256,), np.float32) is resident
        # The oldest four are gone, the newest four are resident.
        tags = {key[0] for key in conv_mod._WORKSPACES}
        assert tags == {"test4", "test5", "test6", "test7"}
        clear_workspaces()

    def test_col2im_returns_fresh_arrays(self):
        cols = np.arange(2 * 4 * 16, dtype=np.float32).reshape(2, 4, 16)
        folded = col2im(cols, (2, 1, 8, 8), (2, 2), (2, 2), (0, 0))
        assert not np.may_share_memory(folded, cols)
        one_by_one = col2im(cols.reshape(2, 4, 16), (2, 4, 4, 4), (1, 1), (1, 1), (0, 0))
        assert not np.may_share_memory(one_by_one, cols)

    def test_im2col_out_buffer_roundtrip(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        out = np.empty((2, 3 * 4, 25), dtype=np.float32)
        returned = im2col(x, (2, 2), (1, 1), (0, 0), out=out)
        assert returned is out
        np.testing.assert_array_equal(out, im2col(x, (2, 2), (1, 1), (0, 0)))


#: Tiny workload shared by the engine-level dtype tests.
TINY = dict(samples_per_class=4, test_samples_per_class=2, epochs=2, warmup_epochs=1)


@register_scenario("_test/dtype_digits", description="2-task digit stream (dtype tests)")
def _dtype_digits(profile, seed, **params):
    stream = mnist_usps(
        "mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=seed
    )
    stream.tasks = stream.tasks[:2]
    return stream


def tiny_spec(method: str, dtype: str) -> RunSpec:
    return RunSpec(
        method=method,
        scenario="_test/dtype_digits",
        profile="smoke",
        profile_overrides={**TINY, "dtype": dtype},
    )


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))


class TestEngineThreading:
    def test_cache_keys_differ_across_dtypes(self):
        key32 = tiny_spec("FineTune", "float32").cache_key()
        key64 = tiny_spec("FineTune", "float64").cache_key()
        assert key32 != key64

    def test_payload_records_dtype(self):
        payload = tiny_spec("FineTune", "float64").cache_payload()
        assert payload["profile"]["dtype"] == "float64"

    @pytest.mark.parametrize("method", ["CDCL", "DER", "CDTrans-S", "TVT"])
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_checkpoint_round_trips_dtype(self, method, dtype):
        from repro.engine.runner import load_checkpoint, run_one

        spec = tiny_spec(method, dtype)
        run_one(spec, checkpoint=True)
        loaded = load_checkpoint(spec)
        arrays = loaded.checkpoint_arrays()
        assert arrays, "method exposes no state"
        for name, value in arrays.items():
            if np.asarray(value).dtype.kind == "f":
                assert np.asarray(value).dtype == np.dtype(dtype), name

    def test_run_one_produces_dtype_tagged_cells(self):
        from repro.engine.runner import run_one

        cell32 = run_one(tiny_spec("FineTune", "float32"))
        cell64 = run_one(tiny_spec("FineTune", "float64"))
        assert not cell64.cached  # distinct cache identity from the float32 cell
        for cell in (cell32, cell64):
            assert cell.results, "continual run must produce scores"
