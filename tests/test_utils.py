"""Tests for the shared utilities and the package surface."""

import numpy as np
import pytest

import repro
from repro.utils import (
    format_bytes,
    global_rng,
    parse_size,
    resolve_rng,
    set_seed,
    spawn_rng,
)


class TestRngManagement:
    def test_set_seed_reproducible(self):
        set_seed(42)
        a = global_rng().random(5)
        set_seed(42)
        b = global_rng().random(5)
        assert np.allclose(a, b)

    def test_resolve_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_resolve_int_seeds(self):
        a = resolve_rng(7).random(3)
        b = resolve_rng(7).random(3)
        assert np.allclose(a, b)

    def test_resolve_none_is_global(self):
        set_seed(1)
        assert resolve_rng(None) is global_rng()

    def test_spawn_produces_independent_streams(self):
        base = np.random.default_rng(0)
        child_a = spawn_rng(base)
        child_b = spawn_rng(base)
        assert not np.allclose(child_a.random(5), child_b.random(5))

    def test_spawn_deterministic_given_parent_state(self):
        a = spawn_rng(np.random.default_rng(3)).random(4)
        b = spawn_rng(np.random.default_rng(3)).random(4)
        assert np.allclose(a, b)


class TestParseSize:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("0", 0),
            ("1024", 1024),
            ("1K", 1024),
            ("1.5K", 1536),
            ("500M", 500 * 1024**2),
            ("2G", 2 * 1024**3),
            (" 10k ", 10 * 1024),  # whitespace + lowercase suffix
        ],
    )
    def test_parses_valid_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_accepts_int_passthrough(self):
        assert parse_size(12345) == 12345

    @pytest.mark.parametrize("text", ["lots", "", "12Q", "G"])
    def test_rejects_garbage_with_value_error(self, text):
        with pytest.raises(ValueError, match="invalid size"):
            parse_size(text)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "count, expected",
        [
            (0, "0 B"),
            (1023, "1023 B"),
            (1024, "1.0 KiB"),
            (1536, "1.5 KiB"),
            (5 * 1024**2, "5.0 MiB"),
            (3 * 1024**3, "3.0 GiB"),
            (5000 * 1024**3, "5000.0 GiB"),  # GiB is the ceiling unit
        ],
    )
    def test_formats(self, count, expected):
        assert format_bytes(count) == expected

    def test_round_trips_with_parse(self):
        assert parse_size("500M") == 500 * 1024**2
        assert format_bytes(parse_size("500M")) == "500.0 MiB"


class TestCacheIntegration:
    def test_evict_accepts_suffixed_max_bytes(self, tmp_path, monkeypatch):
        from repro.engine import cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache.store("a" * 32, b"x", meta={"scenario": "s"})
        victims = cache.evict(max_bytes="0K")
        assert [v.key for v in victims] == ["a" * 32]


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert callable(repro.set_seed)

    def test_subpackages_importable(self):
        import repro.autograd
        import repro.baselines
        import repro.continual
        import repro.core
        import repro.data
        import repro.experiments
        import repro.io
        import repro.nn
        import repro.optim
        import repro.theory
