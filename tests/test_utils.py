"""Tests for RNG utilities and the package surface."""

import numpy as np

import repro
from repro.utils import global_rng, resolve_rng, set_seed, spawn_rng


class TestRngManagement:
    def test_set_seed_reproducible(self):
        set_seed(42)
        a = global_rng().random(5)
        set_seed(42)
        b = global_rng().random(5)
        assert np.allclose(a, b)

    def test_resolve_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_resolve_int_seeds(self):
        a = resolve_rng(7).random(3)
        b = resolve_rng(7).random(3)
        assert np.allclose(a, b)

    def test_resolve_none_is_global(self):
        set_seed(1)
        assert resolve_rng(None) is global_rng()

    def test_spawn_produces_independent_streams(self):
        base = np.random.default_rng(0)
        child_a = spawn_rng(base)
        child_b = spawn_rng(base)
        assert not np.allclose(child_a.random(5), child_b.random(5))

    def test_spawn_deterministic_given_parent_state(self):
        a = spawn_rng(np.random.default_rng(3)).random(4)
        b = spawn_rng(np.random.default_rng(3)).random(4)
        assert np.allclose(a, b)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert callable(repro.set_seed)

    def test_subpackages_importable(self):
        import repro.autograd
        import repro.baselines
        import repro.continual
        import repro.core
        import repro.data
        import repro.experiments
        import repro.io
        import repro.nn
        import repro.optim
        import repro.theory
