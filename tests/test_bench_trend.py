"""Tests for ``tools/bench_trend.py`` (bench artifact trend renderer)."""

import importlib.util
import json
import os
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO / "tools" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trend)


def write_report(directory: Path, sha: str, total: float, mtime: float, **extra):
    payload = {
        "sha": sha,
        "python": "3.11.7",
        "profile": "smoke",
        "total_seconds": total,
        "cells": extra.pop("cells", {"benchmarks/test_x.py::t": total}),
        "failed": extra.pop("failed", []),
        "cache": extra.pop("cache", {"hit_rate": 0.5}),
    }
    path = directory / f"BENCH_{sha}.json"
    path.write_text(json.dumps(payload))
    os.utime(path, (mtime, mtime))
    return path


@pytest.fixture()
def reports_dir(tmp_path):
    write_report(tmp_path, "aaa1111", 10.0, mtime=1_000)
    write_report(tmp_path, "bbb2222", 12.0, mtime=2_000)
    write_report(tmp_path, "ccc3333", 9.0, mtime=3_000)
    return tmp_path


class TestLoading:
    def test_orders_by_mtime(self, reports_dir):
        reports = bench_trend.load_reports(reports_dir)
        assert [r["sha"] for r in reports] == ["aaa1111", "bbb2222", "ccc3333"]

    def test_baseline_always_first(self, reports_dir):
        write_report(reports_dir, "baseline", 11.0, mtime=9_000)
        reports = bench_trend.load_reports(reports_dir)
        assert reports[0]["sha"] == "baseline"

    def test_skips_unreadable_files(self, reports_dir, capsys):
        (reports_dir / "BENCH_broken.json").write_text("{not json")
        reports = bench_trend.load_reports(reports_dir)
        assert len(reports) == 3
        assert "skipping" in capsys.readouterr().err


class TestRows:
    def test_delta_chains_across_commits(self, reports_dir):
        rows = bench_trend.trend_rows(bench_trend.load_reports(reports_dir))
        assert rows[0]["delta"] is None
        assert rows[1]["delta"] == pytest.approx(0.2)  # 10 -> 12
        assert rows[2]["delta"] == pytest.approx(-0.25)  # 12 -> 9

    def test_cell_filter_tracks_one_nodeid(self, reports_dir):
        write_report(
            reports_dir,
            "ddd4444",
            20.0,
            mtime=4_000,
            cells={"benchmarks/test_y.py::only_here": 20.0},
        )
        rows = bench_trend.trend_rows(
            bench_trend.load_reports(reports_dir), cell="benchmarks/test_x.py::t"
        )
        assert [r["sha"] for r in rows] == ["aaa1111", "bbb2222", "ccc3333"]
        assert rows[1]["seconds"] == 12.0


class TestRendering:
    def test_markdown_table_shape(self, reports_dir):
        rows = bench_trend.trend_rows(bench_trend.load_reports(reports_dir))
        text = bench_trend.render_markdown(rows, "suite total")
        lines = text.splitlines()
        assert lines[0].startswith("### Bench trend")
        assert "| sha |" in lines[2] or lines[2].startswith("| sha")
        assert sum(1 for line in lines if line.startswith("| ")) == 4  # header + 3 rows
        assert "+20.0%" in text and "50%" in text

    def test_csv_output(self, reports_dir):
        rows = bench_trend.trend_rows(bench_trend.load_reports(reports_dir))
        text = bench_trend.render_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("sha,python,profile")
        assert len(lines) == 4


class TestMain:
    def test_writes_output_file(self, reports_dir, tmp_path, capsys):
        out = tmp_path / "trend.md"
        assert bench_trend.main([str(reports_dir), "-o", str(out)]) == 0
        assert "Bench trend" in out.read_text()

    def test_csv_to_stdout(self, reports_dir, capsys):
        assert bench_trend.main([str(reports_dir), "--csv"]) == 0
        assert capsys.readouterr().out.startswith("sha,")

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        assert bench_trend.main([str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_unknown_cell_exits_2(self, reports_dir, capsys):
        assert bench_trend.main([str(reports_dir), "--cell", "nope"]) == 2
