"""Tests for the v2 binary wire protocol (:mod:`repro.netio`).

Three layers, mirroring the protocol's own structure:

* the frame codec — every payload shape that can cross the wire must
  round-trip bitwise, and every malformed frame must be refused with
  :class:`netio.FrameError` *before* any large allocation;
* negotiation — both framings coexist per connection, servers answer
  in kind, clients follow the advertised ``proto`` unless
  ``REPRO_WIRE`` forces a side;
* the retry contract — non-idempotent requests must never be re-sent
  after a torn socket mid-exchange, idempotent ones may.
"""

import asyncio
import json
import struct

import numpy as np
import pytest

from repro import netio


def roundtrip(payload, *, compress=None):
    return netio.decode_frame(netio.encode_frame(payload, compress=compress))


class TestFrameRoundTrip:
    """Encode → decode must be the identity, bit for bit."""

    @pytest.mark.parametrize("dtype", ["<f4", "<f8", "<i8", "|b1", "<u2"])
    @pytest.mark.parametrize("compress", [None, 1, 6])
    def test_dtypes_bitwise(self, dtype, compress):
        rng = np.random.default_rng(7)
        arr = (rng.random((5, 7)) * 100).astype(np.dtype(dtype))
        out = roundtrip({"ok": True, "x": arr}, compress=compress)
        assert out["x"].dtype == np.dtype(dtype)
        assert out["x"].shape == arr.shape
        np.testing.assert_array_equal(out["x"], arr)
        assert out["x"].tobytes() == arr.tobytes()

    def test_zero_dimensional_array(self):
        arr = np.array(3.25)  # 0-d, shape ()
        out = roundtrip({"x": arr})["x"]
        assert out.shape == ()
        assert out.dtype == np.float64
        assert float(out) == 3.25

    def test_empty_array(self):
        arr = np.zeros((0, 4), dtype=np.float32)
        out = roundtrip({"x": arr})["x"]
        assert out.shape == (0, 4)
        assert out.dtype == np.float32

    def test_fortran_ordered_array(self):
        arr = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        out = roundtrip({"x": arr})["x"]
        np.testing.assert_array_equal(out, arr)

    def test_non_contiguous_view(self):
        base = np.arange(20, dtype=np.int64).reshape(4, 5)
        view = base[::2, 1::2]  # strided, non-contiguous
        out = roundtrip({"x": view})["x"]
        np.testing.assert_array_equal(out, view)

    def test_bytes_and_nested_structure(self):
        payload = {
            "op": "put_checkpoint",
            "data": b"\x00\x01binary\xff",
            "meta": {"name": "cdcl", "list": [1, 2.5, None, True, "s"]},
            "arrays": [np.arange(3), {"inner": np.ones((2, 2), dtype=np.float32)}],
        }
        out = roundtrip(payload)
        assert out["data"] == payload["data"]
        assert out["meta"] == payload["meta"]
        np.testing.assert_array_equal(out["arrays"][0], np.arange(3))
        np.testing.assert_array_equal(out["arrays"][1]["inner"], np.ones((2, 2)))

    def test_numpy_scalars_become_python_values(self):
        out = roundtrip({"i": np.int64(7), "f": np.float64(0.5), "b": np.bool_(True)})
        assert out == {"i": 7, "f": 0.5, "b": True}
        assert isinstance(out["i"], int) and isinstance(out["f"], float)

    def test_float_repr_exactness(self):
        # JSON floats in the header must round-trip exactly (repr).
        value = 0.1 + 0.2  # 0.30000000000000004
        assert roundtrip({"v": value})["v"] == value

    def test_compression_only_when_it_saves(self):
        # Tiny buffer: below the threshold, never compressed.
        small = netio.build_frame({"x": np.arange(4)}, compress=9)
        assert small.nbytes == small.raw_nbytes
        # Compressible buffer: zeros shrink dramatically.
        big = netio.build_frame(
            {"x": np.zeros(100_000, dtype=np.float64)}, compress=6
        )
        assert big.nbytes < big.raw_nbytes / 2
        out = netio.decode_frame(b"".join(big.parts))
        np.testing.assert_array_equal(out["x"], np.zeros(100_000))

    def test_object_dtype_rejected(self):
        with pytest.raises(netio.FrameError, match="object-dtype"):
            netio.encode_frame({"x": np.array([{"a": 1}], dtype=object)})

    def test_reserved_key_rejected(self):
        with pytest.raises(netio.FrameError, match="reserved"):
            netio.encode_frame({"__repb__": 0})


class TestFrameRejection:
    """Malformed frames must raise FrameError before allocating."""

    def test_bad_magic(self):
        good = netio.encode_frame({"ok": True})
        with pytest.raises(netio.FrameError, match="magic"):
            netio.decode_frame(b"XXXX" + good[4:])

    def test_bad_version(self):
        good = bytearray(netio.encode_frame({"ok": True}))
        good[4] = 99
        with pytest.raises(netio.FrameError, match="version"):
            netio.decode_frame(bytes(good))

    def test_truncated_prefix(self):
        with pytest.raises(netio.FrameError, match="truncated"):
            netio.decode_frame(b"REPB\x02")

    def test_truncated_header_and_buffer(self):
        good = netio.encode_frame({"x": np.arange(10)})
        with pytest.raises(netio.FrameError, match="truncated"):
            netio.decode_frame(good[: netio.PREFIX_SIZE + 2])
        with pytest.raises(netio.FrameError, match="truncated"):
            netio.decode_frame(good[:-1])

    def test_huge_declared_header_refused_before_allocation(self):
        # A prefix declaring a multi-GiB header must be refused from
        # the 12 fixed bytes alone.
        prefix = struct.pack("<4sBBHI", b"REPB", 2, 0, 0, 0xFFFF_FFFF)
        with pytest.raises(netio.FrameError, match="exceeds the cap"):
            netio.decode_frame(prefix)

    def test_huge_declared_buffer_refused(self):
        header = json.dumps(
            {
                "payload": {"x": {"__repb__": 0}},
                "buffers": [{"kind": "nd", "dtype": "<f8", "shape": [1], "nbytes": 1 << 50}],
            }
        ).encode()
        frame = struct.pack("<4sBBHI", b"REPB", 2, 0, 1, len(header)) + header
        with pytest.raises(netio.FrameError, match="invalid buffer length"):
            netio.decode_frame(frame)

    def test_length_dtype_mismatch_refused(self):
        header = json.dumps(
            {
                "payload": {"x": {"__repb__": 0}},
                "buffers": [{"kind": "nd", "dtype": "<f8", "shape": [4], "nbytes": 8}],
            }
        ).encode()
        frame = (
            struct.pack("<4sBBHI", b"REPB", 2, 0, 1, len(header)) + header + b"\x00" * 8
        )
        with pytest.raises(netio.FrameError, match="does not match"):
            netio.decode_frame(frame)

    def test_missing_buffer_reference_refused(self):
        header = json.dumps({"payload": {"x": {"__repb__": 3}}, "buffers": []}).encode()
        frame = struct.pack("<4sBBHI", b"REPB", 2, 0, 0, len(header)) + header
        with pytest.raises(netio.FrameError, match="missing buffer"):
            netio.decode_frame(frame)


class _EchoServer:
    """serve_connection around a dispatch that reflects proto + payload."""

    def __init__(self, *, compress=None):
        self.stats = netio.WireStats()
        self.server = None
        self.compress = compress

    async def dispatch(self, request: netio.WireRequest):
        payload = request.payload
        answer = {"ok": True, "proto_seen": request.proto, "op": payload.get("op")}
        if "echo" in payload:
            answer["echo"] = payload["echo"]
        if payload.get("op") == "ping":
            answer["proto"] = netio.WIRE_VERSION
        return answer

    async def __aenter__(self):
        async def handle(reader, writer):
            await netio.serve_connection(
                reader, writer, self.dispatch, stats=self.stats,
                compress=self.compress,
            )

        self.server = await asyncio.start_server(
            handle, "127.0.0.1", 0, limit=netio.STREAM_LIMIT
        )
        return self.server.sockets[0].getsockname()[1]

    async def __aexit__(self, *exc):
        self.server.close()
        await self.server.wait_closed()


class TestNegotiation:
    """Both framings on one connection; answers in kind; env override."""

    def test_server_answers_each_framing_in_kind(self):
        async def scenario():
            async with _EchoServer() as port:
                v1 = await netio.request_async(
                    "127.0.0.1", port, {"op": "a"}, proto=1
                )
                v2 = await netio.request_async(
                    "127.0.0.1", port, {"op": "b", "echo": np.arange(5)}, proto=2
                )
                return v1, v2

        v1, v2 = asyncio.run(scenario())
        assert v1["proto_seen"] == 1
        assert v2["proto_seen"] == 2
        np.testing.assert_array_equal(v2["echo"], np.arange(5))

    def test_mixed_framings_on_one_connection(self):
        """A line, then a frame, then a line again — same socket."""

        async def scenario():
            async with _EchoServer() as port:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port, limit=netio.STREAM_LIMIT
                )
                try:
                    answers = []
                    for proto, payload in [
                        (1, {"op": "a"}),
                        (2, {"op": "b", "echo": np.ones(3)}),
                        (1, {"op": "c"}),
                    ]:
                        if proto == 2:
                            for part in netio.build_frame(payload).parts:
                                writer.write(bytes(part))
                        else:
                            writer.write(json.dumps(payload).encode() + b"\n")
                        await writer.drain()
                        reply = await netio.WireReader(reader).read_request()
                        answers.append((reply.proto, reply.payload))
                    return answers
                finally:
                    writer.close()

        answers = asyncio.run(scenario())
        assert [proto for proto, _ in answers] == [1, 2, 1]
        assert [p["proto_seen"] for _, p in answers] == [1, 2, 1]

    def test_frame_split_across_tcp_segments(self):
        """The reader must reassemble a frame trickled byte by byte."""

        async def scenario():
            async with _EchoServer() as port:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    wire = netio.encode_frame({"op": "x", "echo": np.arange(100)})
                    for start in range(0, len(wire), 64):
                        writer.write(wire[start : start + 64])
                        await writer.drain()
                        await asyncio.sleep(0)
                    reply = await netio.WireReader(reader).read_request()
                    return reply.payload
                finally:
                    writer.close()

        out = asyncio.run(scenario())
        np.testing.assert_array_equal(out["echo"], np.arange(100))

    def test_garbled_frame_answers_error_then_closes(self):
        async def scenario():
            async with _EchoServer() as port:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    writer.write(struct.pack("<4sBBHI", b"REPB", 9, 0, 0, 4) + b"{}{}")
                    await writer.drain()
                    reply = await netio.WireReader(reader).read_request()
                    closed = await reader.read()
                    return reply.payload, closed
                finally:
                    writer.close()

        payload, closed = asyncio.run(scenario())
        assert payload["ok"] is False and "bad frame" in payload["error"]
        assert closed == b""  # server hung up: a desynced stream is dead

    def test_preferred_proto_follows_advertisement(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIRE", raising=False)
        assert netio.preferred_proto(2) == 2
        assert netio.preferred_proto(3) == 2
        assert netio.preferred_proto(1) == 1
        assert netio.preferred_proto(None) == 1
        assert netio.preferred_proto("bogus") == 1

    def test_repro_wire_forces_both_directions(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "json")
        assert netio.preferred_proto(2) == 1
        monkeypatch.setenv("REPRO_WIRE", "2")
        assert netio.preferred_proto(None) == 2
        monkeypatch.setenv("REPRO_WIRE", "nonsense")
        with pytest.raises(ValueError):
            netio.wire_preference()

    def test_wire_stats_count_both_framings(self):
        async def scenario():
            server = _EchoServer()
            async with server as port:
                await netio.request_async("127.0.0.1", port, {"op": "a"}, proto=1)
                await netio.request_async(
                    "127.0.0.1", port, {"op": "b", "echo": np.arange(10)}, proto=2
                )
                return server.stats.snapshot()

        snap = asyncio.run(scenario())
        assert snap["lines_in"] == 1 and snap["frames_in"] == 1
        assert snap["lines_out"] == 1 and snap["frames_out"] == 1
        assert snap["bytes_in"] > 0 and snap["bytes_out"] > 0

    def test_server_side_compression_is_counted(self):
        async def scenario():
            server = _EchoServer(compress=6)
            async with server as port:
                answer = await netio.request_async(
                    "127.0.0.1",
                    port,
                    {"op": "b", "echo": np.zeros(50_000, dtype=np.float64)},
                    proto=2,
                )
                return answer, server.stats.snapshot()

        answer, snap = asyncio.run(scenario())
        np.testing.assert_array_equal(answer["echo"], np.zeros(50_000))
        assert snap["zlib_raw_out"] > snap["zlib_wire_out"] > 0
        assert snap["compressed_ratio"] > 2


class TestIdempotentRetry:
    """request_with_retry must not replay non-idempotent ops blindly."""

    def _flaky_server(self, fail_first: int):
        """A server whose first ``fail_first`` connections die mid-request."""
        seen = {"connections": 0, "dispatched": 0}

        async def handle(reader, writer):
            seen["connections"] += 1
            if seen["connections"] <= fail_first:
                # Read the request, then tear the socket without answering
                # — the dangerous window where the op may have side effects.
                await netio.WireReader(reader).read_request()
                writer.close()
                return

            async def dispatch(request):
                seen["dispatched"] += 1
                return {"ok": True, "dispatched": seen["dispatched"]}

            await netio.serve_connection(reader, writer, dispatch)

        return seen, handle

    def test_non_idempotent_raises_on_torn_socket(self):
        async def scenario():
            seen, handle = self._flaky_server(fail_first=1)
            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(ConnectionError, match="non-idempotent"):
                    await netio.request_with_retry(
                        "127.0.0.1", port, {"op": "submit"}, attempts=5,
                        base_delay=0.001,
                    )
                return seen
            finally:
                server.close()
                await server.wait_closed()

        seen = asyncio.run(scenario())
        assert seen["connections"] == 1  # exactly one send; never replayed

    def test_idempotent_retries_through_torn_socket(self):
        async def scenario():
            seen, handle = self._flaky_server(fail_first=2)
            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                answer = await netio.request_with_retry(
                    "127.0.0.1", port, {"op": "stats"}, attempts=5,
                    base_delay=0.001, idempotent=True,
                )
                return answer, seen
            finally:
                server.close()
                await server.wait_closed()

        answer, seen = asyncio.run(scenario())
        assert answer == {"ok": True, "dispatched": 1}
        assert seen["connections"] == 3

    def test_sync_call_speaks_binary(self):
        """The worker-side synchronous path carries frames too."""

        async def scenario():
            async with _EchoServer() as port:
                return await asyncio.to_thread(
                    netio.call,
                    "127.0.0.1",
                    port,
                    {"op": "x", "echo": np.arange(6, dtype=np.float32)},
                    timeout=10.0,
                    proto=2,
                )

        answer = asyncio.run(scenario())
        assert answer["proto_seen"] == 2
        assert answer["echo"].dtype == np.float32
        np.testing.assert_array_equal(answer["echo"], np.arange(6))
