"""Tests for the domain-incremental (DIL) scenario extension."""

import numpy as np
import pytest

from repro.continual import Scenario, run_continual
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import office_home_dil


@pytest.fixture(scope="module")
def dil_stream():
    return office_home_dil(
        source="Ar",
        targets=("Cl", "Pr"),
        num_classes=3,
        samples_per_class=6,
        test_samples_per_class=4,
        rng=0,
    )


class TestDILStream:
    def test_shared_classes_across_tasks(self, dil_stream):
        assert dil_stream[0].classes == dil_stream[1].classes

    def test_validate_modes(self, dil_stream):
        dil_stream.validate(allow_shared_classes=True)
        with pytest.raises(ValueError):
            dil_stream.validate()  # strict mode rejects shared classes

    def test_target_domains_rotate(self, dil_stream):
        a = dil_stream[0].target_train.arrays()[0]
        b = dil_stream[1].target_train.arrays()[0]
        # Same classes, different domain transforms -> different marginals.
        assert not np.allclose(a.mean(), b.mean(), atol=1e-3) or not np.allclose(
            a.std(), b.std(), atol=1e-3
        )

    def test_source_domain_fixed(self, dil_stream):
        assert dil_stream.source_domain == "art"
        assert "clipart" in dil_stream.target_domain or "+".join(
            ("Cl", "Pr")
        ) == dil_stream.target_domain


class TestDILEvaluation:
    def test_cdcl_runs_dil_protocol(self, dil_stream):
        trainer = CDCLTrainer(CDCLConfig.fast(), in_channels=3, image_size=16, rng=0)
        result = run_continual(trainer, dil_stream, Scenario.DIL)
        assert 0.0 <= result.acc <= 1.0
        assert result.r_matrix.values.shape == (2, 2)

    def test_dil_uses_latest_head(self, dil_stream):
        """DIL evaluation must query the most recent task parameters."""
        conditioning = []

        class Probe(CDCLTrainer):
            def _embed(self, task_id, images):
                conditioning.append(task_id)
                return super()._embed(task_id, images)

        trainer = Probe(CDCLConfig.fast(), in_channels=3, image_size=16, rng=0)
        run_continual(trainer, dil_stream, Scenario.DIL)
        # The final evaluation round scores both seen tasks; each must
        # condition the encoder on the latest task's (K_i, b_i), i.e.
        # index 1 (earlier entries include task-0 training/eval passes).
        assert conditioning[-2:] == [1, 1]
        # And the harness-produced predictions equal an explicit
        # latest-head query.
        images, _ = dil_stream[0].target_test.arrays()
        np.testing.assert_array_equal(
            trainer.predict_multi(images, 0, [Scenario.DIL])[Scenario.DIL],
            trainer.predict(images, trainer.tasks_seen - 1, Scenario.DIL),
        )

    def test_scenario_flag(self):
        assert not Scenario.DIL.task_id_at_test

    def test_dil_answers_in_local_label_space(self, dil_stream):
        """DIL predictions must be task-local ids, not global CIL ids."""
        trainer = CDCLTrainer(CDCLConfig.fast(), in_channels=3, image_size=16, rng=0)
        for task in dil_stream:
            trainer.observe_task(task)
        images, _ = dil_stream[0].target_test.arrays()
        out = trainer.predict(images, trainer.tasks_seen - 1, Scenario.DIL)
        assert out.max() < dil_stream.classes_per_task
