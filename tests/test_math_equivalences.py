"""Equivalence tests: library ops against independent manual math."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import CDCLConfig, CDCLTrainer
from repro.nn import Bilinear, MultiHeadSelfAttention
from repro.nn.attention import scaled_dot_product_attention
from repro.nn.module import Parameter
from repro.optim import Adam, AdamW


@pytest.fixture()
def rng():
    return np.random.default_rng(31)


class TestAttentionMath:
    def test_scaled_dot_product_matches_manual(self, rng):
        b, h, n, d = 1, 1, 3, 4
        q = rng.normal(size=(b, h, n, d))
        k = rng.normal(size=(b, h, n, d))
        v = rng.normal(size=(b, h, n, d))
        out = scaled_dot_product_attention(Tensor(q), Tensor(k), Tensor(v)).data

        scores = q[0, 0] @ k[0, 0].T / np.sqrt(d)
        weights = np.exp(scores - scores.max(axis=-1, keepdims=True))
        weights /= weights.sum(axis=-1, keepdims=True)
        expected = weights @ v[0, 0]
        assert np.allclose(out[0, 0], expected)

    def test_single_head_attention_matches_manual(self, rng):
        dim = 6
        attn = MultiHeadSelfAttention(dim, num_heads=1, rng=rng)
        x = rng.normal(size=(1, 4, dim))
        out = attn(Tensor(x)).data

        q = x @ attn.q_proj.weight.data.T + attn.q_proj.bias.data
        k = x @ attn.k_proj.weight.data.T + attn.k_proj.bias.data
        v = x @ attn.v_proj.weight.data.T + attn.v_proj.bias.data
        scores = q[0] @ k[0].T / np.sqrt(dim)
        weights = np.exp(scores - scores.max(axis=-1, keepdims=True))
        weights /= weights.sum(axis=-1, keepdims=True)
        attended = weights @ v[0]
        expected = attended @ attn.out_proj.weight.data.T + attn.out_proj.bias.data
        assert np.allclose(out[0], expected)

    def test_multi_head_is_not_single_head(self, rng):
        """Head splitting must change the computation (not a reshape no-op)."""
        x = rng.normal(size=(1, 4, 8))
        one = MultiHeadSelfAttention(8, num_heads=1, rng=0)
        four = MultiHeadSelfAttention(8, num_heads=4, rng=0)
        # Same initial projection weights (same seed chain) but different
        # head geometry -> different outputs.
        four.load_state_dict(one.state_dict())
        assert not np.allclose(one(Tensor(x)).data, four(Tensor(x)).data)


class TestBilinear:
    def test_matches_manual_form(self, rng):
        layer = Bilinear(3, 4, 2, rng=rng)
        x1 = rng.normal(size=(5, 3))
        x2 = rng.normal(size=(5, 4))
        out = layer(Tensor(x1), Tensor(x2)).data
        w = layer.weight.data
        expected = np.stack(
            [
                np.einsum("bi,ij,bj->b", x1, w[k], x2) + layer.bias.data[k]
                for k in range(2)
            ],
            axis=1,
        )
        assert np.allclose(out, expected)

    def test_gradients_flow(self, rng):
        layer = Bilinear(3, 3, 2, rng=rng)
        x1 = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        x2 = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        layer(x1, x2).sum().backward()
        assert x1.grad is not None and x2.grad is not None
        assert layer.weight.grad is not None


class TestAdamFirstStepMath:
    def test_adam_first_step_is_signed_lr(self):
        """With bias correction, Adam's first update is ~lr * sign(grad)."""
        p = Parameter(np.zeros(4))
        p.grad = np.array([1.0, -2.0, 0.5, -0.1])
        Adam([p], lr=0.01).step()
        assert np.allclose(p.data, -0.01 * np.sign(p.grad), atol=1e-6)

    def test_adamw_decay_applied_before_step(self):
        p = Parameter(np.ones(2) * 10)
        p.grad = np.zeros(2) + 1e-12  # negligible gradient
        AdamW([p], lr=0.1, weight_decay=0.5).step()
        # Pure decay: 10 - 0.1*0.5*10 = 9.5 (minus a tiny adaptive term).
        assert np.allclose(p.data, 9.5, atol=0.2)

    def test_adam_vs_adamw_differ_under_decay(self):
        grads = np.array([0.3, -0.7])
        a = Parameter(np.ones(2))
        w = Parameter(np.ones(2))
        a.grad = grads.copy()
        w.grad = grads.copy()
        Adam([a], lr=0.1, weight_decay=0.5).step()
        AdamW([w], lr=0.1, weight_decay=0.5).step()
        assert not np.allclose(a.data, w.data)


class TestTrainerEdgePaths:
    def test_width_to_task_error(self, tiny_stream):
        trainer = CDCLTrainer(CDCLConfig.fast(), 1, 16, rng=0)
        trainer.observe_task(tiny_stream[0])
        assert trainer._width_to_task(2) == 0
        with pytest.raises(ValueError):
            trainer._width_to_task(3)

    def test_predict_without_task_id_falls_back_to_cil(self, tiny_stream):
        from repro.continual import Scenario

        trainer = CDCLTrainer(CDCLConfig.fast(), 1, 16, rng=0)
        trainer.observe_task(tiny_stream[0])
        images, _ = tiny_stream[0].target_test.arrays()
        out = trainer.predict(images, None, Scenario.TIL)
        assert np.array_equal(out, trainer.network.predict_cil(images))
