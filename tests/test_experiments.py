"""Smoke tests for the experiment runners (tiny profile).

These verify plumbing — streams built correctly, every method wired,
renderers produce the paper's layout — not result quality (that is the
benchmarks' job).
"""

import pytest

from repro.continual import Scenario
from repro.core import cost_from_config, forward_cost
from repro.experiments import (
    ABLATION_VARIANTS,
    TABLE1_COLUMNS,
    TABLE2_COLUMNS,
    build_method,
    get_profile,
    render_figure2,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_figure2,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

SMOKE = get_profile("smoke")
FAST_METHODS = ("DER", "CDCL")


class TestProfiles:
    def test_known_profiles(self):
        for name in ("smoke", "scaled", "full"):
            profile = get_profile(name)
            assert profile.name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            get_profile("huge")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert get_profile().name == "smoke"

    def test_overrides(self):
        profile = get_profile("smoke", epochs=7, warmup_epochs=2)
        assert profile.epochs == 7

    def test_config_builders(self):
        profile = get_profile("smoke")
        cdcl = profile.cdcl_config()
        assert cdcl.embed_dim == profile.cdcl_embed_dim
        baseline = profile.baseline_config()
        assert baseline.backbone.embed_dim == profile.baseline_embed_dim


class TestBuildMethod:
    @pytest.mark.parametrize(
        "name",
        ["CDCL", "DER", "DER++", "HAL", "MSL", "FineTune", "CDTrans-S", "CDTrans-B"],
    )
    def test_builds_every_method(self, name):
        method = build_method(name, SMOKE, in_channels=1, image_size=16)
        assert method.name.lower().replace("-", "").startswith(
            name.lower().replace("-", "").replace("++", "")[:3]
        )

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            build_method("iCaRL", SMOKE, 1, 16)


class TestTable1:
    def test_smoke_run_and_render(self):
        result = run_table1(
            columns=("MN->US",), profile=SMOKE, methods=FAST_METHODS, include_tvt=True
        )
        assert "MN->US" in result.pairs
        pair = result.pairs["MN->US"]
        for method in FAST_METHODS:
            assert 0.0 <= pair.acc(method, Scenario.TIL) <= 1.0
            assert 0.0 <= pair.acc(method, Scenario.CIL) <= 1.0
        assert Scenario.TIL in pair.tvt_acc
        text = render_table1(result, methods=FAST_METHODS)
        assert "Table I" in text and "CDCL (FGT)" in text and "TVT" in text

    def test_all_nine_columns_known(self):
        assert len(TABLE1_COLUMNS) == 9

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            run_table1(columns=("X->Y",), profile=SMOKE)


class TestTable2:
    def test_smoke_run(self):
        result = run_table2(
            columns=("Ar->Cl",), profile=SMOKE, methods=("CDCL",), include_tvt=False
        )
        assert result.pairs["Ar->Cl"].acc("CDCL", Scenario.TIL) >= 0.0
        assert "Table II" in render_table2(result, methods=("CDCL",))

    def test_twelve_pairs_defined(self):
        assert len(TABLE2_COLUMNS) == 12

    def test_unknown_pair_raises(self):
        with pytest.raises(ValueError):
            run_table2(columns=("Ar->Ar",), profile=SMOKE)


class TestTable3:
    def test_smoke_matrix(self):
        result = run_table3(
            domains=("clp", "skt"),
            profile=SMOKE,
            methods=("CDCL",),
            num_classes=4,
            classes_per_task=2,
        )
        assert ("clp", "skt") in result.pairs
        assert ("skt", "clp") in result.pairs
        text = render_table3(result, methods=("CDCL",))
        assert "Table III" in text

    def test_unknown_domain_raises(self):
        with pytest.raises(ValueError):
            run_table3(domains=("clp", "xyz"), profile=SMOKE)


class TestTable4:
    def test_variant_registry(self):
        assert "full" in ABLATION_VARIANTS
        assert len(ABLATION_VARIANTS) == 5

    def test_smoke_ablation(self):
        result = run_table4(
            directions=("mnist->usps",), variants=("full", "C (-L_R)"), profile=SMOKE
        )
        acc = result.acc("full", "mnist->usps", Scenario.TIL)
        assert 0.0 <= acc <= 1.0
        assert "Table IV" in render_table4(result)

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            run_table4(variants=("bogus",), profile=SMOKE)


class TestFigure2:
    def test_series_lengths(self):
        result = run_figure2(profile=SMOKE)
        til = result.series[Scenario.TIL]
        assert len(til.mean) == 4  # VisDA has 4 tasks
        assert len(til.std) == 4
        assert all(0.0 <= m <= 1.0 for m in til.mean)
        text = render_figure2(result)
        assert "Figure 2" in text


class TestComplexityModel:
    def test_breakdown_total(self):
        cost = forward_cost(
            image_pixels=256, seq_len=16, embed_dim=32,
            tokenizer_layers=2, attention_layers=2,
        )
        assert cost.total == (
            cost.tokenizer + cost.attention_scores + cost.attention_values
            + cost.projections + cost.feedforward
        )

    def test_quadratic_in_sequence_length(self):
        short = forward_cost(256, seq_len=8, embed_dim=32, tokenizer_layers=1, attention_layers=1)
        long = forward_cost(256, seq_len=16, embed_dim=32, tokenizer_layers=1, attention_layers=1)
        assert long.attention_scores == 4 * short.attention_scores

    def test_quadratic_in_embed_dim(self):
        narrow = forward_cost(256, 16, embed_dim=16, tokenizer_layers=1, attention_layers=1)
        wide = forward_cost(256, 16, embed_dim=32, tokenizer_layers=1, attention_layers=1)
        assert wide.projections == 4 * narrow.projections

    def test_dominant_term_switches_with_regime(self):
        long_seq = forward_cost(4096, seq_len=1024, embed_dim=16, tokenizer_layers=1, attention_layers=1)
        assert long_seq.dominant_term() == "dn^2"
        wide = forward_cost(256, seq_len=4, embed_dim=256, tokenizer_layers=1, attention_layers=1)
        assert wide.dominant_term() == "nd^2"

    def test_cost_from_config(self):
        profile = get_profile("smoke")
        cost = cost_from_config(profile.cdcl_config(), image_size=16, in_channels=1)
        assert cost.total > 0
