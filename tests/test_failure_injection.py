"""Failure-injection tests: degenerate data and adversarial conditions.

A production library must not crash (or silently corrupt training) on
edge-case streams: tiny tasks, constant images, empty pair sets, NaN
gradients.
"""

import numpy as np
import pytest

from repro.continual import Scenario, TaskStream, UDATask, run_continual
from repro.core import CDCLConfig, CDCLTrainer
from repro.data import ArrayDataset


def make_degenerate_task(task_id, images, labels):
    ds = ArrayDataset(images, labels)
    k = len(np.unique(labels[labels >= 0])) or 1
    classes = tuple(range(task_id * k, (task_id + 1) * k))
    return UDATask(
        task_id=task_id,
        classes=classes,
        source_train=ds,
        target_train=ds,
        target_test=ds,
    )


class TestDegenerateTasks:
    def test_tiny_task_two_samples(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(2, 1, 16, 16))
        labels = np.array([0, 1])
        task = make_degenerate_task(0, images, labels)
        trainer = CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0)
        trainer.observe_task(task)  # must not raise
        assert trainer.tasks_seen == 1

    def test_constant_images(self):
        """All-identical inputs: gradients degenerate but finite."""
        images = np.ones((8, 1, 16, 16)) * 0.5
        labels = np.arange(8) % 2
        task = make_degenerate_task(0, images, labels)
        trainer = CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0)
        trainer.observe_task(task)
        assert all(np.isfinite(loss) for loss in trainer.logs[0].epoch_losses)

    def test_single_class_task(self):
        images = np.random.default_rng(0).normal(size=(6, 1, 16, 16))
        labels = np.zeros(6, dtype=int)
        task = make_degenerate_task(0, images, labels)
        trainer = CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0)
        trainer.observe_task(task)
        predictions = trainer.network.predict_til(images, 0)
        assert (predictions == 0).all()

    def test_extreme_pixel_values(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(8, 1, 16, 16)) * 1e3
        labels = np.arange(8) % 2
        task = make_degenerate_task(0, images, labels)
        trainer = CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0)
        trainer.observe_task(task)
        # Parameters must stay finite (grad clipping + skip-nonfinite).
        assert all(np.isfinite(p.data).all() for p in trainer.network.parameters())


class TestStreamMisuse:
    def test_single_task_stream_metrics(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(8, 1, 16, 16))
        labels = np.arange(8) % 2
        stream = TaskStream("one", "a", "b", [make_degenerate_task(0, images, labels)])
        trainer = CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0)
        result = run_continual(trainer, stream, Scenario.TIL)
        assert result.fgt == 0.0  # no previous task, nothing to forget

    def test_wrong_channel_count_fails_loudly(self, tiny_stream):
        trainer = CDCLTrainer(CDCLConfig.fast(), in_channels=3, image_size=16, rng=0)
        with pytest.raises(ValueError):
            trainer.observe_task(tiny_stream[0])  # stream is 1-channel

    def test_predict_before_any_task_raises(self):
        trainer = CDCLTrainer(CDCLConfig.fast(), 1, 16, rng=0)
        with pytest.raises(IndexError):
            trainer.network.predict_til(np.zeros((1, 1, 16, 16)), 0)


class TestOptimizerResilience:
    def test_injected_nan_gradient_does_not_corrupt(self, tiny_stream):
        trainer = CDCLTrainer(CDCLConfig.fast(epochs=2, warmup_epochs=1), 1, 16, rng=0)
        trainer.observe_task(tiny_stream[0])
        param = trainer.network.parameters()[0]
        param.grad = np.full_like(param.data, np.nan)
        before = param.data.copy()
        trainer.optimizer.step()
        assert np.allclose(param.data, before)
