"""Tests for the synthetic domain generators and benchmark factories."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DIGIT_GLYPHS,
    DigitsDomain,
    ObjectDomain,
    class_prototype,
    domainnet,
    mnist_usps,
    office31,
    office_home,
    render_digit,
    visda2017,
)


class TestDigitGlyphs:
    def test_all_ten_digits_defined(self):
        assert set(DIGIT_GLYPHS) == set(range(10))
        for glyph in DIGIT_GLYPHS.values():
            assert glyph.shape == (7, 5)

    def test_glyphs_pairwise_distinct(self):
        for a in range(10):
            for b in range(a + 1, 10):
                assert not np.array_equal(DIGIT_GLYPHS[a], DIGIT_GLYPHS[b])

    def test_render_shape_and_range(self, rng):
        img = render_digit(3, rng)
        assert img.shape == (1, 16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_render_jitter_varies(self):
        rng = np.random.default_rng(0)
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert not np.allclose(a, b)


class TestDigitsDomain:
    def test_unknown_domain_raises(self):
        with pytest.raises(ValueError):
            DigitsDomain("emnist")

    def test_sample_shapes_and_labels(self, rng):
        ds = DigitsDomain("mnist").sample([3, 7], samples_per_class=5, rng=rng)
        assert len(ds) == 10
        assert set(ds.labels.tolist()) == {0, 1}  # relabeled

    def test_sample_global_labels(self, rng):
        ds = DigitsDomain("mnist").sample([3, 7], 2, rng=rng, relabel=False)
        assert set(ds.labels.tolist()) == {3, 7}

    def test_domains_differ(self):
        classes = [0, 1]
        m = DigitsDomain("mnist").sample(classes, 20, rng=0)
        u = DigitsDomain("usps").sample(classes, 20, rng=0)
        # Marginal statistics must differ (domain gap).
        assert abs(m.images.mean() - u.images.mean()) > 0.01 or abs(
            m.images.std() - u.images.std()
        ) > 0.01

    def test_zero_gap_reduces_shift(self):
        classes = [0, 1]
        u_full = DigitsDomain("usps", domain_gap=1.0).sample(classes, 30, rng=0)
        u_none = DigitsDomain("usps", domain_gap=0.0).sample(classes, 30, rng=0)
        m = DigitsDomain("mnist", domain_gap=0.0).sample(classes, 30, rng=0)
        gap_full = abs(u_full.images.std() - m.images.std())
        gap_none = abs(u_none.images.std() - m.images.std())
        assert gap_none < gap_full


class TestObjectDomain:
    def test_prototype_deterministic(self):
        a = class_prototype(7, benchmark="office31")
        b = class_prototype(7, benchmark="office31")
        assert np.allclose(a, b)

    def test_prototype_distinct_per_class(self):
        a = class_prototype(0, benchmark="x")
        b = class_prototype(1, benchmark="x")
        assert not np.allclose(a, b)

    def test_prototype_namespaced_by_benchmark(self):
        a = class_prototype(0, benchmark="office31")
        b = class_prototype(0, benchmark="visda")
        assert not np.allclose(a, b)

    def test_sample_shapes(self, rng):
        dom = ObjectDomain("amazon", benchmark="office31")
        ds = dom.sample([0, 1, 2], samples_per_class=4, rng=rng)
        assert ds.images.shape == (12, 3, 16, 16)
        assert sorted(set(ds.labels.tolist())) == [0, 1, 2]

    def test_domain_pipeline_deterministic(self):
        a = ObjectDomain("amazon", benchmark="office31")
        b = ObjectDomain("amazon", benchmark="office31")
        da = a.sample([0], 5, rng=0).images
        db = b.sample([0], 5, rng=0).images
        assert np.allclose(da, db)

    def test_different_domains_differ(self):
        a = ObjectDomain("amazon", benchmark="office31").sample([0], 10, rng=0).images
        w = ObjectDomain("webcam", benchmark="office31").sample([0], 10, rng=0).images
        assert not np.allclose(a.mean(), w.mean(), atol=1e-3) or not np.allclose(
            a.std(), w.std(), atol=1e-3
        )


class TestBenchmarkFactories:
    def test_mnist_usps_structure(self):
        stream = mnist_usps(rng=0, samples_per_class=3, test_samples_per_class=2)
        assert len(stream) == 5
        assert stream.classes_per_task == 2
        assert stream.total_classes == 10
        stream.validate()

    def test_mnist_usps_direction_parsing(self):
        stream = mnist_usps("usps->mnist", rng=0, samples_per_class=2, test_samples_per_class=2)
        assert stream.source_domain == "usps"
        with pytest.raises(ValueError):
            mnist_usps("usps-mnist")

    def test_visda_structure(self):
        stream = visda2017(rng=0, samples_per_class=2, test_samples_per_class=2)
        assert len(stream) == 4
        assert stream.classes_per_task == 3

    def test_office31_structure(self):
        stream = office31("A", "D", rng=0, samples_per_class=2, test_samples_per_class=2)
        assert len(stream) == 5
        assert stream.classes_per_task == 6
        assert stream.total_classes == 30
        assert stream.source_domain == "amazon"

    def test_office31_unknown_domain(self):
        with pytest.raises(ValueError):
            office31("A", "Z")

    def test_office_home_structure(self):
        stream = office_home("Ar", "Cl", rng=0, samples_per_class=2, test_samples_per_class=2)
        assert len(stream) == 13
        assert stream.classes_per_task == 5
        assert stream.total_classes == 65

    def test_domainnet_scalable(self):
        stream = domainnet(
            "clp", "skt", num_classes=6, classes_per_task=3,
            samples_per_class=2, test_samples_per_class=2, rng=0,
        )
        assert len(stream) == 2
        with pytest.raises(ValueError):
            domainnet(num_classes=7, classes_per_task=3)

    def test_task_classes_are_disjoint_and_ordered(self):
        stream = visda2017(rng=0, samples_per_class=2, test_samples_per_class=2)
        assert stream[0].classes == (0, 1, 2)
        assert stream[1].classes == (3, 4, 5)
        assert stream[1].class_offset == 3

    def test_target_unlabeled_strips_labels(self):
        stream = mnist_usps(rng=0, samples_per_class=2, test_samples_per_class=2)
        unlabeled = stream[0].target_unlabeled()
        assert np.all(unlabeled.labels == -1)

    def test_same_seed_reproducible(self):
        a = mnist_usps(rng=5, samples_per_class=3, test_samples_per_class=2)
        b = mnist_usps(rng=5, samples_per_class=3, test_samples_per_class=2)
        assert np.allclose(a[0].source_train.images, b[0].source_train.images)

    def test_different_seed_differs(self):
        a = mnist_usps(rng=5, samples_per_class=3, test_samples_per_class=2)
        b = mnist_usps(rng=6, samples_per_class=3, test_samples_per_class=2)
        assert not np.allclose(a[0].source_train.images, b[0].source_train.images)
