"""Tests for rehearsal memory buffers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continual import RehearsalMemory, ReservoirMemory


def store_fake_task(memory, task_id, n=20, num_classes=4, seed=0):
    rng = np.random.default_rng(seed + task_id)
    memory.store_task(
        task_id,
        x_source=rng.normal(size=(n, 1, 4, 4)),
        x_target=rng.normal(size=(n, 1, 4, 4)),
        y_source=rng.integers(0, num_classes, size=n),
        logits_source=rng.normal(size=(n, num_classes * (task_id + 1))),
        logits_target=rng.normal(size=(n, num_classes * (task_id + 1))),
        confidence=rng.random(n),
    )


class TestRehearsalMemory:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            RehearsalMemory(0)

    def test_per_task_budget(self):
        memory = RehearsalMemory(capacity=10)
        store_fake_task(memory, 0, n=30)
        assert len(memory) == 10  # floor(10/1)
        store_fake_task(memory, 1, n=30)
        assert len(memory) == 10  # 5 + 5
        assert len(memory.records_for_task(0)) == 5
        assert len(memory.records_for_task(1)) == 5

    def test_total_never_exceeds_capacity(self):
        memory = RehearsalMemory(capacity=13)
        for task in range(5):
            store_fake_task(memory, task, n=40)
            assert len(memory) <= 13

    def test_keeps_highest_confidence(self):
        memory = RehearsalMemory(capacity=2)
        n = 10
        confidence = np.arange(n, dtype=float)
        memory.store_task(
            0,
            x_source=np.zeros((n, 1, 2, 2)),
            x_target=np.zeros((n, 1, 2, 2)),
            y_source=np.zeros(n, dtype=int),
            logits_source=np.zeros((n, 2)),
            logits_target=np.zeros((n, 2)),
            confidence=confidence,
        )
        kept = {r.confidence for r in memory.records_for_task(0)}
        assert kept == {9.0, 8.0}

    def test_old_tasks_trimmed_by_confidence(self):
        memory = RehearsalMemory(capacity=4)
        store_fake_task(memory, 0, n=10, seed=1)
        confidences_before = sorted(
            (r.confidence for r in memory.records_for_task(0)), reverse=True
        )
        store_fake_task(memory, 1, n=10, seed=2)
        kept = sorted((r.confidence for r in memory.records_for_task(0)), reverse=True)
        assert kept == confidences_before[:2]

    def test_sample_and_batch_arrays(self):
        memory = RehearsalMemory(capacity=10)
        store_fake_task(memory, 0, n=10)
        store_fake_task(memory, 1, n=10)
        batch = memory.sample(4, rng=0)
        xs, xt, ys, ls, lt, task_ids, widths = memory.batch_arrays(batch)
        assert xs.shape[0] == 4
        assert ls.shape == lt.shape
        # Width equals the widest record; narrower records are padded.
        assert ls.shape[1] == widths.max()
        for i, w in enumerate(widths):
            assert np.allclose(ls[i, w:], 0.0)

    def test_sample_empty_returns_empty(self):
        assert RehearsalMemory(5).sample(3) == []

    def test_batch_arrays_empty_raises(self):
        with pytest.raises(ValueError):
            RehearsalMemory(5).batch_arrays([])

    def test_record_fields(self):
        memory = RehearsalMemory(capacity=5)
        store_fake_task(memory, 0, n=5)
        record = memory.records_for_task(0)[0]
        assert record.task_id == 0
        assert record.x_source.shape == (1, 4, 4)
        assert isinstance(record.y_source, int)


class TestReservoirMemory:
    def test_fills_to_capacity(self):
        memory = ReservoirMemory(capacity=8, rng=0)
        for i in range(8):
            memory.add(np.zeros((1, 2, 2)), i % 2, np.zeros(2), 0)
        assert len(memory) == 8

    def test_never_exceeds_capacity(self):
        memory = ReservoirMemory(capacity=8, rng=0)
        for i in range(100):
            memory.add(np.zeros((1, 2, 2)), 0, np.zeros(2), 0)
        assert len(memory) == 8

    def test_sample_none_when_empty(self):
        assert ReservoirMemory(4).sample(2) is None

    def test_sample_shapes(self):
        memory = ReservoirMemory(capacity=10, rng=0)
        memory.add_batch(np.zeros((6, 1, 2, 2)), np.arange(6), np.zeros((6, 3)), 1)
        x, y, logits, task_ids, widths = memory.sample(4)
        assert x.shape == (4, 1, 2, 2)
        assert logits.shape == (4, 3)
        assert np.all(task_ids == 1)
        assert np.all(widths == 3)

    def test_sample_pads_mixed_widths(self):
        memory = ReservoirMemory(capacity=10, rng=0)
        memory.add_batch(np.zeros((3, 1, 2, 2)), np.arange(3), np.zeros((3, 2)), 0)
        memory.add_batch(np.zeros((3, 1, 2, 2)), np.arange(3), np.ones((3, 4)), 1)
        x, y, logits, task_ids, widths = memory.sample(6)
        assert logits.shape[1] == 4
        narrow = widths == 2
        assert np.allclose(logits[narrow][:, 2:], 0.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_reservoir_is_approximately_uniform(self, seed):
        """Items from the whole stream survive, not just the newest."""
        memory = ReservoirMemory(capacity=50, rng=seed)
        for i in range(500):
            memory.add(np.zeros((1, 1, 1)), i, np.zeros(1), 0)
        labels = [item.y for item in memory._items]
        # At least one item from the first half of the stream survives.
        assert min(labels) < 250
