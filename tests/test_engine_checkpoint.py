"""Tests for checkpoint-aware run cells.

Contract: a cell run with ``checkpoint=True`` persists its trained
model next to the cached metrics, and ``load_checkpoint(spec)``
reproduces the cell's evaluation metrics exactly — no retraining, for
every method family (growing-head CDCL/baselines, single-head CDTrans,
static TVT) — including under parallel workers.
"""

import numpy as np
import pytest

from repro.continual import Scenario, evaluate_task_multi
from repro.data.synthetic import mnist_usps
from repro.engine import (
    SCENARIOS,
    RunSpec,
    cache,
    has_checkpoint,
    load_checkpoint,
    register_scenario,
    run_one,
    run_specs,
)

#: Tiny workload: 2-task digit stream, 2-epoch training.
TINY_OVERRIDES = dict(
    samples_per_class=4, test_samples_per_class=2, epochs=2, warmup_epochs=1
)

SCENARIOS_BOTH = [Scenario.TIL, Scenario.CIL]


@register_scenario("_test/ckpt_digits", description="2-task digit stream (checkpoint tests)")
def _ckpt_digits(profile, seed, **params):
    stream = mnist_usps(
        "mnist->usps", samples_per_class=4, test_samples_per_class=2, rng=seed
    )
    stream.tasks = stream.tasks[:2]
    return stream


def tiny_spec(method: str = "FineTune", **kwargs) -> RunSpec:
    return RunSpec(
        method=method,
        scenario="_test/ckpt_digits",
        profile="smoke",
        profile_overrides=dict(TINY_OVERRIDES),
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))


def _stream_for(spec: RunSpec):
    return SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)


class TestRoundTrip:
    @pytest.mark.parametrize("method", ["CDCL", "DER", "CDTrans-S"])
    def test_reload_reproduces_final_row_metrics(self, method):
        """train -> persist -> load_checkpoint -> identical eval accuracies."""
        spec = tiny_spec(method)
        cell = run_one(spec, checkpoint=True)
        assert not cell.cached
        loaded = load_checkpoint(spec)
        stream = _stream_for(spec)
        last = len(stream) - 1
        for task in stream:
            accs = evaluate_task_multi(loaded, task, SCENARIOS_BOTH)
            for scenario in SCENARIOS_BOTH:
                expected = cell.results[scenario].r_matrix.values[last, task.task_id]
                assert accs[scenario] == pytest.approx(expected, abs=1e-12)

    def test_static_method_round_trips(self):
        """TVT (static, fit on the whole stream) checkpoints like any cell."""
        spec = tiny_spec("TVT")
        cell = run_one(spec, checkpoint=True)
        loaded = load_checkpoint(spec)
        stream = _stream_for(spec)
        for scenario in SCENARIOS_BOTH:
            accs = [
                evaluate_task_multi(loaded, task, [scenario])[scenario]
                for task in stream
            ]
            assert float(np.mean(accs)) == pytest.approx(
                cell.static_acc[scenario], abs=1e-12
            )

    def test_loaded_method_reports_trained_structure(self):
        spec = tiny_spec("CDCL")
        run_one(spec, checkpoint=True)
        loaded = load_checkpoint(spec)
        assert loaded.tasks_seen == len(_stream_for(spec))


class TestCheckpointLifecycle:
    def test_plain_run_leaves_no_checkpoint(self):
        spec = tiny_spec()
        run_one(spec)
        assert not has_checkpoint(spec)
        with pytest.raises(FileNotFoundError, match="--checkpoint"):
            load_checkpoint(spec)

    def test_hit_without_checkpoint_recomputes_to_materialize_it(self):
        spec = tiny_spec()
        run_one(spec)  # warm the metrics cache, no checkpoint
        again = run_one(spec, checkpoint=True)
        assert not again.cached  # had to retrain to produce the model
        assert has_checkpoint(spec)
        third = run_one(spec, checkpoint=True)
        assert third.cached  # checkpoint present -> plain hit

    def test_checkpoint_requires_caching(self, monkeypatch):
        with pytest.raises(ValueError, match="checkpoint"):
            run_one(tiny_spec(), use_cache=False, checkpoint=True)
        # REPRO_NO_CACHE must not silently drop the model either.
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        with pytest.raises(ValueError, match="checkpoint"):
            run_one(tiny_spec(), checkpoint=True)

    def test_checkpoint_evicts_with_its_entry(self):
        spec = tiny_spec()
        run_one(spec, checkpoint=True)
        assert has_checkpoint(spec)
        cache.evict(max_entries=0)
        assert not has_checkpoint(spec)
        assert cache.load(spec.cache_key()) is None


class TestConcurrentWriters:
    def test_parallel_workers_write_loadable_checkpoints(self):
        """Two workers persisting concurrently must never tear a file."""
        specs = [tiny_spec(seed=seed) for seed in (0, 1)]
        cells = run_specs(specs, jobs=2, checkpoint=True)
        for spec, cell in zip(specs, cells):
            assert has_checkpoint(spec)
            loaded = load_checkpoint(spec)
            stream = _stream_for(spec)
            last = len(stream) - 1
            accs = evaluate_task_multi(loaded, stream[last], SCENARIOS_BOTH)
            for scenario in SCENARIOS_BOTH:
                expected = cell.results[scenario].r_matrix.values[last, last]
                assert accs[scenario] == pytest.approx(expected, abs=1e-12)

    def test_parallel_hit_requires_checkpoint(self):
        """A warm metrics cache without checkpoints still dispatches workers."""
        specs = [tiny_spec(seed=seed) for seed in (0, 1)]
        run_specs(specs, jobs=2)  # metrics only
        assert not any(has_checkpoint(s) for s in specs)
        run_specs(specs, jobs=2, checkpoint=True)
        assert all(has_checkpoint(s) for s in specs)
