"""Tests for the cache management layer (manifest/stats/evict/verify).

These drive :mod:`repro.engine.cache` directly with synthetic entries —
no training — so every policy branch is cheap to cover: LRU ordering,
byte/entry bounds, scenario/method filters, dry runs, and corruption
repair.
"""

import os
import time

import pytest

from repro.engine import cache


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))
    cache.reset_session_counters()


def put(key: str, *, scenario="s1", method="m1", payload=b"x" * 100, age=0.0):
    """Store a synthetic entry and back-date its last-use time."""
    cache.store(key, payload, meta={"method": method, "scenario": scenario, "seed": 0})
    if age:
        stamp = time.time() - age
        os.utime(cache.cache_dir() / f"{key}.pkl", (stamp, stamp))


def entry_files() -> list[str]:
    """Cache-entry files on disk, ignoring the run-store index.

    The store's ``runs.sqlite`` deliberately survives evict / verify
    / clear of the entries it indexes: rows are retained with a
    status flip so provenance outlives the payload (see repro.store).
    """
    return [
        path.name
        for path in cache.cache_dir().iterdir()
        if not path.name.startswith("runs.sqlite")
    ]


class TestManifestAndStats:
    def test_manifest_orders_lru_first(self):
        put("b" * 32, age=10)
        put("a" * 32, age=100)
        put("c" * 32)
        assert [e.key for e in cache.manifest()] == ["a" * 32, "b" * 32, "c" * 32]

    def test_load_refreshes_lru_position(self):
        put("a" * 32, age=100)
        put("b" * 32, age=10)
        assert cache.load("a" * 32) is not None  # touch
        assert [e.key for e in cache.manifest()] == ["b" * 32, "a" * 32]

    def test_stats_counts_entries_bytes_and_traffic(self):
        put("a" * 32, payload=b"x" * 1000)
        cache.load("a" * 32)  # hit
        cache.load("f" * 32)  # miss
        report = cache.stats()
        assert report["entries"] == 1
        assert report["total_bytes"] > 1000  # payload + sidecar
        assert report["session"]["hits"] == 1
        assert report["session"]["misses"] == 1
        assert report["session"]["stores"] == 1
        assert report["session"]["hit_rate"] == 0.5

    def test_stats_by_scenario_breakdown(self):
        put("a" * 32, scenario="digits")
        put("b" * 32, scenario="digits")
        put("c" * 32, scenario="visda")
        assert cache.stats()["by_scenario"] == {"digits": 2, "visda": 1}

    def test_inspect_reports_spec_and_sizes(self):
        put("a" * 32, scenario="digits", method="CDCL")
        report = cache.inspect("a" * 32)
        assert report["spec"] == {"method": "CDCL", "scenario": "digits", "seed": 0}
        assert report["result_bytes"] > 0
        assert not report["has_checkpoint"]

    def test_inspect_unknown_key_raises(self):
        with pytest.raises(KeyError):
            cache.inspect("0" * 32)

    def test_entry_without_sidecar_still_listed(self):
        """Entries from pre-manifest caches appear with an empty spec."""
        put("a" * 32)
        (cache.cache_dir() / ("a" * 32 + ".json")).unlink()
        [entry] = cache.manifest()
        assert entry.spec == {} and entry.created is None


class TestEvict:
    def test_noop_without_policy(self):
        put("a" * 32)
        assert cache.evict() == []
        assert cache.stats()["entries"] == 1

    def test_max_entries_drops_least_recently_used(self):
        put("a" * 32, age=100)
        put("b" * 32, age=10)
        put("c" * 32)
        victims = cache.evict(max_entries=2)
        assert [v.key for v in victims] == ["a" * 32]
        assert {e.key for e in cache.manifest()} == {"b" * 32, "c" * 32}

    def test_max_bytes_enforces_bound(self):
        for index, key in enumerate(("a", "b", "c", "d")):
            put(key * 32, payload=b"x" * 10_000, age=100 - index)
        bound = 25_000
        cache.evict(max_bytes=bound)
        assert cache.stats()["total_bytes"] <= bound
        # Newest survives, oldest went first.
        assert "d" * 32 in {e.key for e in cache.manifest()}

    def test_scenario_filter_evicts_all_matching(self):
        put("a" * 32, scenario="digits")
        put("b" * 32, scenario="visda")
        victims = cache.evict(scenario="digits")
        assert [v.key for v in victims] == ["a" * 32]
        assert [e.key for e in cache.manifest()] == ["b" * 32]

    def test_method_filter_with_bound_spares_other_methods(self):
        put("a" * 32, method="CDCL", age=100)
        put("b" * 32, method="DER", age=50)
        put("c" * 32, method="CDCL")
        victims = cache.evict(method="CDCL", max_entries=2)
        assert [v.key for v in victims] == ["a" * 32]  # oldest CDCL only
        assert {e.key for e in cache.manifest()} == {"b" * 32, "c" * 32}

    def test_dry_run_deletes_nothing(self):
        put("a" * 32)
        victims = cache.evict(max_entries=0, dry_run=True)
        assert len(victims) == 1
        assert cache.stats()["entries"] == 1

    def test_evict_removes_sidecar_files(self):
        put("a" * 32)
        cache.evict(max_entries=0)
        assert entry_files() == []


class TestVerify:
    def test_clean_cache_verifies(self):
        put("a" * 32)
        report = cache.verify()
        assert report["entries"] == 1 and report["ok"] == 1
        assert report["corrupt"] == [] and report["orphaned"] == []

    def test_corrupt_entry_detected_and_repaired(self):
        put("a" * 32)
        path = cache.cache_dir() / ("a" * 32 + ".pkl")
        path.write_bytes(b"not a pickle")
        assert cache.verify()["corrupt"] == [path.name]
        assert path.exists()  # detection alone must not delete
        cache.verify(repair=True)
        assert not path.exists()
        assert cache.verify()["corrupt"] == []

    def test_orphans_detected_and_repaired(self):
        put("a" * 32)
        directory = cache.cache_dir()
        orphan_meta = directory / ("b" * 32 + ".json")
        orphan_meta.write_text("{}")
        orphan_ckpt = cache.checkpoint_path("c" * 32)
        orphan_ckpt.write_bytes(b"")
        torn = directory / "xyz.tmp"
        torn.write_bytes(b"")
        stamp = time.time() - 2 * cache._TMP_ORPHAN_AGE_SECONDS
        os.utime(torn, (stamp, stamp))  # old enough to be a killed worker's
        report = cache.verify()
        assert sorted(report["orphaned"]) == sorted(
            [orphan_meta.name, orphan_ckpt.name, torn.name]
        )
        cache.verify(repair=True)
        assert cache.verify()["orphaned"] == []
        assert (directory / ("a" * 32 + ".pkl")).exists()  # untouched

    def test_fresh_tmp_file_is_not_an_orphan(self):
        """A young .tmp may be a concurrent worker mid-write: hands off."""
        in_flight = cache.cache_dir() / "live.tmp"
        in_flight.parent.mkdir(parents=True, exist_ok=True)
        in_flight.write_bytes(b"partial")
        assert cache.verify()["orphaned"] == []
        cache.verify(repair=True)
        assert in_flight.exists()

    def test_entry_checkpoint_is_not_an_orphan(self):
        put("a" * 32)
        cache.checkpoint_path("a" * 32).write_bytes(b"model")
        assert cache.verify()["orphaned"] == []
        [entry] = cache.manifest()
        assert entry.has_checkpoint and entry.checkpoint_bytes == 5

    def test_repair_preserves_checkpoint_of_corrupt_result(self):
        """A corrupt result must never take its trained model with it."""
        key = "a" * 32
        put(key)
        ckpt = cache.checkpoint_path(key)
        ckpt.write_bytes(b"hours of training")
        result = cache.cache_dir() / f"{key}.pkl"
        result.write_bytes(b"not a pickle")
        cache.verify(repair=True)
        assert not result.exists()
        assert ckpt.exists()
        # The surviving pair is a checkpoint-only entry: not an orphan
        # on later passes, visible to the management layer, evictable.
        report = cache.verify()
        assert report["corrupt"] == [] and report["orphaned"] == []
        entries = cache.manifest()
        assert [e.key for e in entries] == [key]
        assert entries[0].has_checkpoint and entries[0].result_bytes == 0
        assert cache.inspect(key)["has_checkpoint"]
        cache.evict(max_entries=0)
        assert not ckpt.exists()

    def test_repair_drops_corrupt_result_without_checkpoint_entirely(self):
        key = "a" * 32
        put(key)
        (cache.cache_dir() / f"{key}.pkl").write_bytes(b"not a pickle")
        cache.verify(repair=True)
        assert entry_files() == []


class TestClear:
    def test_clear_removes_everything(self):
        put("a" * 32)
        cache.checkpoint_path("a" * 32).write_bytes(b"model")
        assert cache.clear() == 1  # one entry (bookkeeping files uncounted)
        assert entry_files() == []
