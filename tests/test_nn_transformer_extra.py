"""Additional transformer/feed-forward behaviour tests."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import FeedForward, TransformerEncoder, TransformerEncoderLayer


@pytest.fixture()
def rng():
    return np.random.default_rng(5)


class TestFeedForward:
    def test_shape_preserved(self, rng):
        ff = FeedForward(dim=8, hidden_dim=16, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 8)))
        assert ff(x).shape == (2, 5, 8)

    def test_hidden_dim_respected(self, rng):
        ff = FeedForward(dim=8, hidden_dim=32, rng=rng)
        first_linear = ff.net[0]
        assert first_linear.out_features == 32

    def test_dropout_only_in_training(self, rng):
        ff = FeedForward(dim=4, hidden_dim=8, dropout=0.5, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 4)))
        ff.eval()
        a = ff(x).data
        b = ff(x).data
        assert np.allclose(a, b)  # deterministic in eval
        ff.train()
        c = ff(x).data
        d = ff(x).data
        assert not np.allclose(c, d)  # stochastic in train


class TestResidualStructure:
    def test_zeroed_attention_still_passes_signal(self, rng):
        """Pre-norm residuals guarantee identity flow: zero out the
        attention/ff output projections and the layer is the identity."""
        layer = TransformerEncoderLayer(8, 2, rng=rng)
        layer.attn.out_proj.weight.data[...] = 0.0
        layer.attn.out_proj.bias.data[...] = 0.0
        last_linear = layer.ff.net[3]
        last_linear.weight.data[...] = 0.0
        last_linear.bias.data[...] = 0.0
        x = Tensor(rng.normal(size=(1, 4, 8)))
        assert np.allclose(layer(x).data, x.data)

    def test_depth_zero_encoder_is_layernorm_only(self, rng):
        encoder = TransformerEncoder(8, depth=0, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        out = encoder(x).data
        # Output is the final LayerNorm of the input; the row means
        # vanish up to rounding at the compute precision.
        atol = 1e-9 if out.dtype == np.float64 else 1e-6
        assert np.allclose(out.mean(axis=-1), 0.0, atol=atol)

    def test_gradient_reaches_first_layer(self, rng):
        encoder = TransformerEncoder(8, depth=3, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        out = encoder(x)
        # Note: a plain .sum() has zero gradient through the final
        # LayerNorm (rows of the normalized output sum to zero), so a
        # non-uniform weighting is required to probe gradient flow.
        weights = Tensor(rng.normal(size=(1, 4, 8)))
        (out * weights).sum().backward()
        first_layer_params = list(encoder.layers[0].parameters())
        assert any(
            p.grad is not None and np.abs(p.grad).sum() > 0 for p in first_layer_params
        )
