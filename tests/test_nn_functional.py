"""Tests for functional losses and helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, gradient_check
from repro.nn import functional as F


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 20), k=st.integers(2, 10), seed=st.integers(0, 99))
    def test_property_rows_sum_to_one(self, n, k, seed):
        labels = np.random.default_rng(seed).integers(0, k, size=n)
        out = F.one_hot(labels, k)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.allclose(out.argmax(axis=1), labels)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(4), labels]).mean()
        got = F.cross_entropy(Tensor(logits), labels).item()
        assert np.isclose(got, expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        assert F.cross_entropy(logits, np.array([0, 1])).item() < 1e-6

    def test_reductions(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 1])
        none = F.cross_entropy(logits, labels, reduction="none")
        assert none.shape == (4,)
        assert np.isclose(
            F.cross_entropy(logits, labels, reduction="sum").item(),
            none.data.sum(),
        )
        with pytest.raises(ValueError):
            F.cross_entropy(logits, labels, reduction="bogus")

    def test_gradient(self, rng):
        labels = np.array([0, 2, 1])
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda x: F.cross_entropy(x, labels), [x])

    def test_gradient_direction_decreases_loss(self, rng):
        logits = Tensor(rng.normal(size=(8, 5)), requires_grad=True)
        labels = rng.integers(0, 5, size=8)
        loss = F.cross_entropy(logits, labels)
        loss.backward()
        stepped = Tensor(logits.data - 0.1 * logits.grad)
        assert F.cross_entropy(stepped, labels).item() < loss.item()


class TestSoftCrossEntropy:
    def test_equals_hard_ce_on_one_hot(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([2, 0, 1, 1])
        hard = F.cross_entropy(logits, labels).item()
        soft = F.soft_cross_entropy(logits, F.one_hot(labels, 3)).item()
        assert np.isclose(hard, soft)

    def test_gradient(self, rng):
        target = np.abs(rng.normal(size=(3, 4)))
        target /= target.sum(axis=1, keepdims=True)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda x: F.soft_cross_entropy(x, target), [x])


class TestKLDivergence:
    def test_zero_for_identical(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        assert abs(F.kl_divergence(logits, logits).item()) < 1e-10

    def test_nonnegative(self, rng):
        for _ in range(5):
            p = Tensor(rng.normal(size=(4, 5)))
            q = Tensor(rng.normal(size=(4, 5)))
            assert F.kl_divergence(p, q).item() >= -1e-10

    def test_asymmetric(self, rng):
        p = Tensor(rng.normal(size=(4, 5)) * 3)
        q = Tensor(rng.normal(size=(4, 5)))
        assert not np.isclose(
            F.kl_divergence(p, q).item(), F.kl_divergence(q, p).item()
        )


class TestRegressionLosses:
    def test_mse_value_and_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        target = rng.normal(size=(3, 4))
        expected = ((x.data - target) ** 2).mean()
        assert np.isclose(F.mse_loss(x, target).item(), expected)
        gradient_check(lambda x: F.mse_loss(x, target), [x])

    def test_l1_value(self, rng):
        x = Tensor(rng.normal(size=(5,)))
        target = rng.normal(size=(5,))
        assert np.isclose(F.l1_loss(x, target).item(), np.abs(x.data - target).mean())

    def test_mse_reductions(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        t = np.zeros((2, 3))
        assert F.mse_loss(x, t, reduction="none").shape == (2, 3)
        assert np.isclose(
            F.mse_loss(x, t, reduction="sum").item(), (x.data**2).sum()
        )


class TestSimilarityHelpers:
    def test_cosine_similarity_self_is_one(self, rng):
        a = rng.normal(size=(4, 8))
        sim = F.cosine_similarity(a, a)
        assert np.allclose(np.diag(sim), 1.0)

    def test_cosine_range(self, rng):
        sim = F.cosine_similarity(rng.normal(size=(5, 8)), rng.normal(size=(6, 8)))
        assert sim.shape == (5, 6)
        assert np.all(sim <= 1.0 + 1e-9) and np.all(sim >= -1.0 - 1e-9)

    def test_pairwise_sq_distances_matches_manual(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(5, 4))
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1)
        assert np.allclose(F.pairwise_sq_distances(a, b), expected)

    def test_pairwise_nonnegative(self, rng):
        a = rng.normal(size=(10, 3))
        assert np.all(F.pairwise_sq_distances(a, a) >= 0)


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert F.accuracy(logits, np.array([0, 1])) == 1.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert F.accuracy(logits, np.array([0, 1])) == 0.5

    def test_accepts_tensor(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = logits.data.argmax(axis=1)
        assert F.accuracy(logits, labels) == 1.0

    def test_empty_returns_zero(self):
        assert F.accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0
