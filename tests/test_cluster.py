"""Tests for :mod:`repro.cluster` — distributed cell execution.

Contract under test: a sweep executed through a coordinator and N TCP
workers is cell-for-cell **bitwise identical** to the local run (same
cache keys, same accuracy matrices); a worker that dies mid-cell costs
one lease timeout before the cell is requeued and the sweep still
completes; a cell that keeps failing surfaces its error after bounded
retries instead of hanging the sweep; and the disk cache acts as the
dedup/resume layer on both ends of the wire.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro import netio
from repro.api import Session
from repro.cluster import (
    ClusterClient,
    ClusterJobError,
    ClusterWorker,
    CoordinatorThread,
    decode_result,
    decode_spec,
    encode_result,
    encode_spec,
    format_address,
    parse_address,
)
from repro.data.synthetic import mnist_usps
from repro.engine import cache
from repro.engine.executor import run_specs
from repro.engine.runner import RunResult, run_one, spec_for
from repro.engine.registry import METHODS, SCENARIOS, register_scenario

#: Small enough that one cell trains in about a second.
TINY = dict(samples_per_class=4, test_samples_per_class=4, epochs=1, warmup_epochs=1)

if "_test/cluster_digits" not in SCENARIOS:

    @register_scenario("_test/cluster_digits", description="2-task stream (cluster tests)")
    def _cluster_digits(profile, seed, **params):
        stream = mnist_usps(
            "mnist->usps", samples_per_class=4, test_samples_per_class=4, rng=seed
        )
        stream.tasks = stream.tasks[:2]
        return stream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))
    yield


def tiny_spec(method: str = "FineTune", seed: int = 0):
    return spec_for(
        method, "_test/cluster_digits", "smoke", seed=seed, profile_overrides=TINY
    )


def assert_cells_identical(ours: RunResult, theirs: RunResult) -> None:
    """Bitwise equality of everything that is science (not wall-clock)."""
    assert ours.method == theirs.method
    assert ours.seed == theirs.seed
    assert ours.stream_name == theirs.stream_name
    assert set(ours.results) == set(theirs.results)
    for scenario, outcome in ours.results.items():
        other = theirs.results[scenario]
        assert np.array_equal(
            outcome.r_matrix.values, other.r_matrix.values, equal_nan=True
        )
        assert outcome.acc == other.acc
    assert ours.static_acc == theirs.static_acc


@contextmanager
def running_cluster(workers: int = 2, **coordinator_kwargs):
    """A coordinator plus N in-process workers, torn down afterwards."""
    coordinator_kwargs.setdefault("check_interval", 0.05)
    with CoordinatorThread(**coordinator_kwargs) as (host, port):
        address = f"{host}:{port}"
        pool = [
            ClusterWorker(address, name=f"test-worker-{i}", poll_interval=0.05)
            for i in range(workers)
        ]
        threads = [
            threading.Thread(target=worker.run, daemon=True, name=worker.name)
            for worker in pool
        ]
        for thread in threads:
            thread.start()
        try:
            yield address, pool
        finally:
            for worker in pool:
                worker.stop()
            try:
                ClusterClient(address).shutdown()
            except (OSError, ClusterJobError):
                pass  # coordinator already gone
            for thread in threads:
                thread.join(timeout=10)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_address_forms(self):
        assert parse_address("cluster://10.1.2.3:7070") == ("10.1.2.3", 7070)
        assert parse_address("host:1234") == ("host", 1234)
        assert parse_address("host") == ("host", 7070)
        assert parse_address("[::1]:7070") == ("::1", 7070)
        assert parse_address("cluster://[fe80::2]") == ("fe80::2", 7070)
        assert format_address("h", 9) == "cluster://h:9"

    @pytest.mark.parametrize(
        "bad",
        [
            "", "   ", "http://h:1", "h:notaport", "h:99999", ":7070",
            "cluster://", "::1", "[::1", "[::1]x",
        ],
    )
    def test_parse_address_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_spec_round_trip_preserves_cache_key(self):
        spec = tiny_spec("DER", seed=7)
        wire = encode_spec(spec)
        decoded = decode_spec(wire)
        # The wire form pins the resolved dtype, so overrides may gain
        # one entry — everything that determines the cell is unchanged.
        assert decoded.cache_key() == spec.cache_key()
        assert (decoded.method, decoded.scenario, decoded.seed) == (
            spec.method, spec.scenario, spec.seed,
        )
        assert decoded.eval_scenarios == spec.eval_scenarios
        assert decoded.method_overrides == spec.method_overrides

    def test_wire_spec_pins_client_dtype_against_worker_env(self, monkeypatch):
        """A worker's divergent REPRO_DTYPE must not change what a wire
        spec trains at (or which cache key its result lands under)."""
        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        spec = tiny_spec(seed=4)
        key = spec.cache_key()
        wire = encode_spec(spec)
        assert wire["profile_overrides"]["dtype"] == "float32"
        monkeypatch.setenv("REPRO_DTYPE", "float64")  # the "worker" machine
        decoded = decode_spec(wire)
        assert decoded.resolved_profile().dtype == "float32"
        assert decoded.cache_key() == key

    def test_spec_round_trip_survives_json(self):
        import json

        spec = tiny_spec(seed=3)
        decoded = decode_spec(json.loads(json.dumps(encode_spec(spec))))
        assert decoded.cache_key() == spec.cache_key()
        assert decoded.eval_scenarios == spec.eval_scenarios

    def test_result_round_trip_is_bitwise(self):
        result = run_one(tiny_spec(seed=11), use_cache=False)
        decoded = decode_result(encode_result(result))
        assert_cells_identical(decoded, result)
        assert decoded.elapsed == result.elapsed

    def test_decode_result_rejects_foreign_objects(self):
        import base64
        import pickle

        text = base64.b64encode(pickle.dumps({"not": "a result"})).decode()
        with pytest.raises(TypeError, match="RunResult"):
            decode_result(text)


class TestEnvUnlocks:
    """REPRO_FULL travels the wire: recorded by the client, applied
    around one cell on the worker, never an arbitrary-env vector."""

    def test_unlock_recorded_only_under_env(self, monkeypatch):
        from repro.cluster.protocol import spec_unlocks

        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert "unlocks" not in encode_spec(tiny_spec())
        assert spec_unlocks(encode_spec(tiny_spec())) == ()
        monkeypatch.setenv("REPRO_FULL", "1")
        wire = encode_spec(tiny_spec())
        assert wire["unlocks"] == ["REPRO_FULL"]
        assert spec_unlocks(wire) == ("REPRO_FULL",)

    def test_unknown_unlocks_never_applied(self):
        from repro.cluster.protocol import spec_unlocks

        wire = {"unlocks": ["PATH", "REPRO_FULL", "LD_PRELOAD"]}
        assert spec_unlocks(wire) == ("REPRO_FULL",)

    def test_apply_unlocks_scopes_the_env(self, monkeypatch):
        from repro.cluster.protocol import apply_unlocks

        monkeypatch.delenv("REPRO_FULL", raising=False)
        with apply_unlocks(("REPRO_FULL",)):
            assert os.environ["REPRO_FULL"] == "1"
        assert "REPRO_FULL" not in os.environ
        monkeypatch.setenv("REPRO_FULL", "0")
        with apply_unlocks(("REPRO_FULL",)):
            assert os.environ["REPRO_FULL"] == "1"
        assert os.environ["REPRO_FULL"] == "0"

    def test_gated_scenario_builds_under_wire_unlock(self, monkeypatch):
        """The worker-side composition: a domainnet_full spec resolved
        under REPRO_FULL=1 on the client must build on a worker whose
        environment lacks the flag."""
        from repro.cluster.protocol import apply_unlocks, spec_unlocks

        monkeypatch.setenv("REPRO_FULL", "1")
        spec = spec_for(
            "FineTune",
            "domainnet_full/clp->skt",
            "smoke",
            profile_overrides=dict(samples_per_class=1, test_samples_per_class=1),
        )
        wire = encode_spec(spec)
        monkeypatch.delenv("REPRO_FULL", raising=False)  # the worker machine
        decoded = decode_spec(wire)
        with pytest.raises(ValueError, match="REPRO_FULL"):
            SCENARIOS.get(decoded.scenario).build(
                decoded.resolved_profile(), decoded.seed, **decoded.scenario_params
            )
        with apply_unlocks(spec_unlocks(wire)):
            stream = SCENARIOS.get(decoded.scenario).build(
                decoded.resolved_profile(), decoded.seed, **decoded.scenario_params
            )
        assert len(stream) == 15
        assert "REPRO_FULL" not in os.environ


class TestInflightGate:
    def test_bounds_and_counts(self):
        gate = netio.InflightGate(2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()  # at the bound -> shed
        gate.release()
        assert gate.try_acquire()
        stats = gate.stats()
        assert stats["rejected"] == 1
        assert stats["peak"] == 2

    def test_unlimited_when_zero(self):
        gate = netio.InflightGate(0)
        assert all(gate.try_acquire() for _ in range(100))

    def test_release_underflow_raises(self):
        with pytest.raises(RuntimeError):
            netio.InflightGate(1).release()

    def test_shed_exempt_ops_sniffs_small_lines_only(self):
        exempt = netio.shed_exempt_ops("stats", "ping")
        assert exempt(b'{"op": "stats"}\n')
        assert exempt(b'{"op": "ping"}\n')
        assert not exempt(b'{"op": "predict", "images": []}\n')
        assert not exempt(b"not json\n")
        assert not exempt(b"x" * 2000)  # big lines are never sniffed


# ----------------------------------------------------------------------
# End-to-end
# ----------------------------------------------------------------------
class TestClusterExecution:
    def test_two_workers_match_local_jobs2_cell_for_cell(self, tmp_path, monkeypatch):
        """The acceptance criterion: cluster == local, bitwise."""
        specs = [tiny_spec(seed=seed) for seed in range(4)]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local-cache"))
        local = run_specs(specs, jobs=2)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cluster-cache"))
        order: list[int] = []
        with running_cluster(workers=2) as (address, pool):
            remote = run_specs(
                specs,
                cluster=address,
                progress=lambda index, spec, result: order.append(index),
            )
            stats = ClusterClient(address).stats()
        assert sorted(order) == [0, 1, 2, 3]
        for ours, theirs in zip(remote, local):
            assert_cells_identical(ours, theirs)
        assert not remote[0].cached  # computed, not replayed
        # every wire-delivered result landed in the client-side cache
        for spec in specs:
            assert cache.contains(spec.cache_key())
        assert stats["tasks"]["done"] == 4
        assert stats["requeues"] == 0

    def test_client_side_cache_hits_never_touch_the_wire(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm-cache"))
        spec = tiny_spec(seed=0)
        run_one(spec)  # warm the local cache
        # No workers attached: only a local hit can answer this.
        with CoordinatorThread(check_interval=0.05) as (host, port):
            [result] = run_specs([spec], cluster=f"{host}:{port}")
            stats = ClusterClient(f"{host}:{port}").stats()
        assert result.cached
        assert stats["tasks"]["total"] == 0  # nothing was ever enqueued

    def test_coordinator_cache_short_circuits_submitted_cells(
        self, tmp_path, monkeypatch
    ):
        """The coordinator's disk cache is the resume layer for the queue."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "coord-cache"))
        spec = tiny_spec(seed=1)
        run_one(spec)  # the coordinator's store already has the cell
        with CoordinatorThread(check_interval=0.05) as (host, port):
            client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
            # Submit directly (bypassing the client-side hit pass) so
            # the queue itself must answer; no worker is attached.
            job = client.submit([spec])
            results = client.wait(job, timeout=10)
            stats = client.stats()
        assert stats["cache_shortcircuits"] == 1
        assert stats["tasks"]["done"] == 1
        assert_cells_identical(results[job.task_ids[0]], run_one(spec))

    def test_duplicate_specs_dedup_onto_one_task(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dedup-cache"))
        spec = tiny_spec(seed=2)
        with running_cluster(workers=1) as (address, pool):
            results = run_specs([spec, spec], cluster=address)
            stats = ClusterClient(address).stats()
        assert stats["tasks"]["total"] == 1  # one execution, two deliveries
        assert_cells_identical(results[0], results[1])

    def test_session_cluster_executor_emits_progress_events(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "session-cache"))
        events = []
        with running_cluster(workers=2) as (address, pool):
            session = Session(
                profile="smoke",
                executor=f"cluster://{address}",
                on_event=events.append,
            )
            result = (
                session.run("FineTune")
                .on("_test/cluster_digits")
                .profile("smoke", **TINY)
                .seeds([0, 1])
                .result()
            )
        assert len(result.runs) == 2
        kinds = [event.kind for event in events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-done"
        assert kinds.count("cell-done") == 2

    def test_builder_on_cluster_overrides_local_session(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "builder-cache"))
        with running_cluster(workers=1) as (address, pool):
            session = Session(profile="smoke")  # local executor
            handle = (
                session.run("FineTune")
                .on("_test/cluster_digits")
                .profile("smoke", **TINY)
                .on_cluster(address)
                .start()
            )
            stats = ClusterClient(address).stats()
        assert stats["tasks"]["done"] == 1  # the cell really went remote
        assert len(handle.results) == 1


class TestFaultTolerance:
    def test_dead_worker_lease_expires_and_cell_is_requeued(
        self, tmp_path, monkeypatch
    ):
        """Killing a worker mid-sweep must not lose its cell."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "requeue-cache"))
        spec = tiny_spec(seed=5)
        with CoordinatorThread(
            lease_timeout=0.5, check_interval=0.05, max_attempts=3
        ) as (host, port):
            address = f"{host}:{port}"
            client = ClusterClient(address, poll_interval=0.05)
            job = client.submit([spec])
            # A zombie worker leases the cell and then dies silently:
            # no heartbeat, no complete, no fail.
            zombie = netio.call(host, port, {"op": "hello", "name": "zombie"})
            leased = netio.call(
                host, port, {"op": "lease", "worker_id": zombie["worker_id"]}
            )
            assert leased["task"]["task_id"] == job.task_ids[0]
            # A live worker picks the cell up after the lease expires.
            worker = ClusterWorker(address, name="survivor", poll_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                results = client.wait(job, timeout=60)
                stats = client.stats()
            finally:
                worker.stop()
                client.shutdown()
                thread.join(timeout=10)
        assert stats["expired_leases"] >= 1
        assert stats["requeues"] >= 1
        assert_cells_identical(
            results[job.task_ids[0]], run_one(spec, use_cache=False)
        )

    def test_late_result_from_presumed_dead_worker_is_accepted(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "late-cache"))
        spec = tiny_spec(seed=6)
        result = run_one(spec, use_cache=False)
        with CoordinatorThread(
            lease_timeout=0.2, check_interval=0.05, max_attempts=2
        ) as (host, port):
            client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
            job = client.submit([spec])
            zombie = netio.call(host, port, {"op": "hello", "name": "slowpoke"})
            netio.call(host, port, {"op": "lease", "worker_id": zombie["worker_id"]})
            time.sleep(0.5)  # lease expires; the cell is requeued
            # ... but the "dead" worker was only slow, and delivers.
            answer = netio.call(
                host,
                port,
                {
                    "op": "complete",
                    "worker_id": zombie["worker_id"],
                    "task_id": job.task_ids[0],
                    "result": encode_result(result),
                    "cached": False,
                },
            )
            assert answer["ok"]
            results = client.wait(job, timeout=10)
        assert_cells_identical(results[job.task_ids[0]], result)

    def test_failing_cell_gives_up_after_bounded_retries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fail-cache"))
        # An unknown method name passes encode/submit (names resolve at
        # execution time) and fails identically on every attempt.
        spec = tiny_spec(seed=0)
        broken = encode_spec(spec)
        broken["method"] = "NoSuchMethod"
        assert "NoSuchMethod" not in METHODS
        with running_cluster(workers=1, lease_timeout=30, max_attempts=2) as (
            address,
            pool,
        ):
            client = ClusterClient(address, poll_interval=0.05)
            host, port = parse_address(address)
            answer = netio.call(
                host,
                port,
                {"op": "submit", "specs": [broken], "use_cache": False},
            )
            from repro.cluster.client import ClusterJob

            job = ClusterJob(job_id=answer["job_id"], task_ids=answer["task_ids"])
            with pytest.raises(ClusterJobError, match="NoSuchMethod"):
                client.wait(job, timeout=60)
            stats = client.stats()
        assert stats["tasks"]["failed"] == 1

    def test_worker_survives_unreachable_coordinator_at_start(self):
        worker = ClusterWorker(
            "127.0.0.1:1", poll_interval=0.01, max_connect_failures=3
        )
        with pytest.raises(ConnectionError, match="unreachable"):
            worker.register()


class TestCoordinatorOps:
    def test_unknown_op_and_unknown_job(self):
        with CoordinatorThread(check_interval=0.05) as (host, port):
            assert not netio.call(host, port, {"op": "frobnicate"})["ok"]
            assert not netio.call(host, port, {"op": "status", "job_id": "nope"})["ok"]
            assert netio.call(host, port, {"op": "ping"})["ok"]

    def test_submit_is_atomic_on_invalid_specs(self, tmp_path, monkeypatch):
        """One unkeyable spec must not orphan the batch's other cells."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "atomic-cache"))
        good = encode_spec(tiny_spec(seed=0))
        bad = dict(good, scenario="no/such/scenario")
        with CoordinatorThread(check_interval=0.05) as (host, port):
            answer = netio.call(
                host, port, {"op": "submit", "specs": [good, bad], "use_cache": True}
            )
            stats = ClusterClient(f"{host}:{port}").stats()
        assert not answer["ok"] and "no/such/scenario" in answer["error"]
        assert stats["tasks"]["total"] == 0  # nothing enqueued, nothing leaks

    def test_collect_redelivers_until_acked(self, tmp_path, monkeypatch):
        """A lost collect reply must not consume results: unacked results
        are redelivered, and acking releases them."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ack-cache"))
        spec = tiny_spec(seed=9)
        run_one(spec)  # coordinator short-circuits the cell at submit
        with CoordinatorThread(check_interval=0.05) as (host, port):
            client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
            job = client.submit([spec])
            first = client.collect(job)
            again = client.collect(job)  # reply "lost": no ack sent
            assert [t for t, _ in first] == [t for t, _ in again] == job.task_ids
            acked = client.collect(job, ack=[t for t, _ in first])
            assert acked == []  # delivered; payload released

    def test_abandoned_job_reclaimed_after_ttl(self, tmp_path, monkeypatch):
        """A client that never acks (crash, Ctrl-C) must not pin results
        in coordinator memory forever — the job TTL sweep reclaims it."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ttl-cache"))
        spec = tiny_spec(seed=10)
        run_one(spec)  # submit short-circuits: the task is done instantly
        with CoordinatorThread(check_interval=0.05, job_ttl=0.2) as (host, port):
            client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
            job = client.submit([spec])  # ... and the client walks away
            deadline = time.monotonic() + 10
            while client.stats()["jobs"]:
                assert time.monotonic() < deadline, "job never reclaimed"
                time.sleep(0.05)
            stats = client.stats()
        assert stats["expired_jobs"] == 1
        # the result still exists where it matters: on disk
        assert cache.contains(spec.cache_key())

    def test_submit_retry_with_same_id_returns_same_job(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "idem-cache"))
        payload = {
            "op": "submit",
            "submit_id": "retry-1",
            "specs": [encode_spec(tiny_spec(seed=0))],
            "use_cache": True,
        }
        with CoordinatorThread(check_interval=0.05) as (host, port):
            first = netio.call(host, port, payload)
            second = netio.call(host, port, payload)  # lost-reply retry
            stats = ClusterClient(f"{host}:{port}").stats()
        assert first["job_id"] == second["job_id"]
        assert first["task_ids"] == second["task_ids"]
        assert stats["jobs"] == 1

    def test_lease_refused_for_unregistered_worker(self):
        """A stale worker_id (coordinator restart) must re-register, not
        receive a lease whose heartbeats can never renew."""
        with CoordinatorThread(check_interval=0.05) as (host, port):
            answer = netio.call(host, port, {"op": "lease", "worker_id": "w999"})
            assert not answer["ok"]
            assert "re-register" in answer["error"]

    def test_stale_fail_report_does_not_clobber_requeued_task(
        self, tmp_path, monkeypatch
    ):
        """A failure from a worker whose lease already expired must not
        touch the cell (it may be queued for — or leased to — another)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "stale-cache"))
        spec = tiny_spec(seed=8)
        with CoordinatorThread(
            lease_timeout=0.2, check_interval=0.05, max_attempts=5
        ) as (host, port):
            client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
            job = client.submit([spec])
            zombie = netio.call(host, port, {"op": "hello", "name": "stale"})
            netio.call(host, port, {"op": "lease", "worker_id": zombie["worker_id"]})
            time.sleep(0.5)  # lease expires; cell is requeued
            answer = netio.call(
                host,
                port,
                {
                    "op": "fail",
                    "worker_id": zombie["worker_id"],
                    "task_id": job.task_ids[0],
                    "error": "stale report",
                },
            )
            status = client.status(job)
            stats = client.stats()
        assert answer["ok"] and answer.get("stale")
        assert status["queued"] == 1 and not status["failed"]
        # exactly the expiry requeue — the stale fail added nothing
        assert stats["requeues"] == 1

    def test_stats_reports_workers_and_transport(self):
        with running_cluster(workers=1) as (address, pool):
            # let the worker register before asking who is connected
            deadline = time.monotonic() + 5
            workers = []
            while time.monotonic() < deadline and not workers:
                workers = ClusterClient(address).stats()["workers"]
                time.sleep(0.05)
        assert workers and workers[0]["name"] == "test-worker-0"

    def test_shutdown_drains_workers(self):
        with CoordinatorThread(check_interval=0.05) as (host, port):
            worker = ClusterWorker(f"{host}:{port}", poll_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            time.sleep(0.2)
            ClusterClient(f"{host}:{port}").shutdown()
            thread.join(timeout=10)
            assert not thread.is_alive()


# ----------------------------------------------------------------------
# Wire protocol v2 — typed result frames + checkpoint upload
# ----------------------------------------------------------------------
class TestResultFrames:
    """The typed v2 result codec must be bitwise-faithful and must
    interoperate with the v1 pickle dialect through one dispatch."""

    def test_frame_round_trip_is_bitwise(self):
        from repro.cluster.protocol import (
            decode_result_frames,
            encode_result_frames,
        )

        result = run_one(tiny_spec(seed=12), use_cache=False)
        payload = encode_result_frames(result)
        # Through the actual wire bytes, not just the dict in memory.
        wire = netio.encode_frame({"result": payload}, compress=6)
        decoded = decode_result_frames(netio.decode_frame(wire)["result"])
        assert_cells_identical(decoded, result)
        assert decoded.elapsed == result.elapsed

    def test_payload_dispatch_accepts_both_dialects(self):
        from repro.cluster.protocol import (
            decode_result_payload,
            encode_result_frames,
        )

        result = run_one(tiny_spec(seed=12), use_cache=False)
        via_pickle = decode_result_payload(encode_result(result))
        via_frames = decode_result_payload(encode_result_frames(result))
        assert_cells_identical(via_pickle, result)
        assert_cells_identical(via_frames, result)
        with pytest.raises((TypeError, ValueError)):
            decode_result_payload({"format": "not/a/result"})

    def test_coordinator_refuses_undecodable_result(self):
        with CoordinatorThread(check_interval=0.05) as (host, port):
            client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
            job = client.submit([tiny_spec(seed=0)])
            hello = netio.call(host, port, {"op": "hello", "name": "mal"})
            lease = netio.call(
                host, port, {"op": "lease", "worker_id": hello["worker_id"]}
            )
            answer = netio.call(
                host,
                port,
                {
                    "op": "complete",
                    "worker_id": hello["worker_id"],
                    "task_id": lease["task"]["task_id"],
                    "result": {"format": "garbage"},
                },
            )
            status = client.status(job)
        assert not answer["ok"] and "undecodable" in answer["error"]
        assert status["done"] == 0  # the cell was not marked complete


class TestForcedJsonWire:
    def test_cluster_run_bitwise_identical_with_v1_forced(self, monkeypatch):
        """REPRO_WIRE=1 pins every peer to JSON lines; the sweep must
        still be cell-for-cell identical to the local run."""
        monkeypatch.setenv("REPRO_WIRE", "1")
        spec = tiny_spec(seed=13)
        local = run_one(spec, use_cache=False)
        with running_cluster(workers=1) as (address, _pool):
            client = ClusterClient(address, poll_interval=0.05)
            job = client.submit([spec], use_cache=False)
            remote = client.wait(job, timeout=120)[job.task_ids[0]]
        assert_cells_identical(remote, local)


class TestCheckpointUpload:
    """complete → want_checkpoint → put_checkpoint, both framings."""

    def _trained_blob(self, spec):
        run_one(spec, checkpoint=True)
        key = spec.cache_key()
        return key, cache.checkpoint_path(key).read_bytes()

    def _complete_task(self, host, port, spec, result):
        client = ClusterClient(f"{host}:{port}", poll_interval=0.05)
        job = client.submit([spec], checkpoint=True)
        hello = netio.call(host, port, {"op": "hello", "name": "up"})
        lease = netio.call(
            host, port, {"op": "lease", "worker_id": hello["worker_id"]}
        )
        answer = netio.call(
            host,
            port,
            {
                "op": "complete",
                "worker_id": hello["worker_id"],
                "task_id": lease["task"]["task_id"],
                "result": encode_result(result),
            },
        )
        return hello["worker_id"], answer

    def test_upload_round_trip_both_framings(self, tmp_path, monkeypatch):
        """Train in cache A, upload into coordinator cache B: the
        complete answer asks for the checkpoint, the upload installs it
        bit-for-bit, and a re-send is acknowledged idempotently."""
        import base64

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "worker-cache"))
        spec = tiny_spec(seed=14)
        key, blob = self._trained_blob(spec)
        result = run_one(spec)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "coord-cache"))
        with CoordinatorThread(check_interval=0.05) as (host, port):
            worker_id, answer = self._complete_task(host, port, spec, result)
            assert answer["ok"] and answer.get("want_checkpoint")
            assert answer["key"] == key
            # v1: base64 text over a JSON line.
            first = netio.call(
                host,
                port,
                {
                    "op": "put_checkpoint",
                    "worker_id": worker_id,
                    "key": key,
                    "data": base64.b64encode(blob).decode("ascii"),
                },
            )
            # v2: raw bytes in a binary frame — idempotent replay.
            again = netio.call(
                host,
                port,
                {
                    "op": "put_checkpoint",
                    "worker_id": worker_id,
                    "key": key,
                    "data": blob,
                },
                proto=2,
            )
        assert first == {"ok": True, "installed": True}
        assert again["ok"] and not again["installed"]
        assert again["reason"] == "already present"
        assert cache.checkpoint_path(key).read_bytes() == blob

    def test_no_upload_requested_when_checkpoint_already_present(
        self, tmp_path, monkeypatch
    ):
        """Shared cache (or an earlier upload): complete must not ask."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared-cache"))
        spec = tiny_spec(seed=14)
        key, _blob = self._trained_blob(spec)  # checkpoint where it belongs
        result = run_one(spec)
        # Drop the cached *result* so the cell is leased out again, but
        # keep the checkpoint file — the interesting half of the state.
        cache._path_for(key).unlink()
        with CoordinatorThread(check_interval=0.05) as (host, port):
            _worker_id, answer = self._complete_task(host, port, spec, result)
        assert answer["ok"] and not answer.get("want_checkpoint")

    def test_worker_uploads_end_to_end(self, tmp_path, monkeypatch):
        """A real worker answering a want_checkpoint: the file lands in
        the coordinator cache and the worker counts the upload."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "e2e-cache"))
        spec = tiny_spec(seed=15)
        with CoordinatorThread(check_interval=0.05) as (host, port):
            address = f"{host}:{port}"
            client = ClusterClient(address, poll_interval=0.05)
            job = client.submit([spec], checkpoint=True)
            worker = ClusterWorker(address, name="ckpt-worker", poll_interval=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                client.wait(job, timeout=120)
            finally:
                worker.stop()
                thread.join(timeout=10)
        # In-process the cache is shared, so the worker's own training
        # already materialized the checkpoint — the coordinator must not
        # have requested a redundant upload.
        assert cache.checkpoint_path(spec.cache_key()).exists()
        assert worker.checkpoints_uploaded == 0
