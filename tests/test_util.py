"""Tests for the :mod:`repro.util` deprecation shim.

The helpers themselves are tested in ``test_utils.py``; this file only
pins the shim contract: old imports keep working, warn once per call
site, and forward to the very same objects.
"""

import warnings

import pytest

from repro import utils


class TestUtilShim:
    @pytest.mark.parametrize("name", ["env_flag", "parse_size", "format_bytes"])
    def test_warns_and_forwards_same_object(self, name):
        import repro.util as util

        with pytest.warns(DeprecationWarning, match=f"repro.util.{name}"):
            forwarded = getattr(util, name)
        assert forwarded is getattr(utils, name)

    def test_warning_names_the_replacement(self):
        import repro.util as util

        with pytest.warns(DeprecationWarning, match="repro.utils"):
            util.parse_size

    def test_from_import_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.util import format_bytes
        assert format_bytes(1024) == "1.0 KiB"

    def test_unknown_attribute_raises(self):
        import repro.util as util

        with pytest.raises(AttributeError, match="no attribute"):
            util.does_not_exist

    def test_rng_helpers_did_not_leak_into_shim(self):
        # The merge went util -> utils; the shim only covers names that
        # ever lived in repro.util, so a typo'd RNG import fails loudly.
        import repro.util as util

        with pytest.raises(AttributeError):
            util.set_seed
