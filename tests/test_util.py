"""Tests for the shared stdlib helpers in :mod:`repro.util`."""

import pytest

from repro.util import format_bytes, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("0", 0),
            ("1024", 1024),
            ("1K", 1024),
            ("1.5K", 1536),
            ("500M", 500 * 1024**2),
            ("2G", 2 * 1024**3),
            (" 10k ", 10 * 1024),  # whitespace + lowercase suffix
        ],
    )
    def test_parses_valid_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_accepts_int_passthrough(self):
        assert parse_size(12345) == 12345

    @pytest.mark.parametrize("text", ["lots", "", "12Q", "G"])
    def test_rejects_garbage_with_value_error(self, text):
        with pytest.raises(ValueError, match="invalid size"):
            parse_size(text)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "count, expected",
        [
            (0, "0 B"),
            (1023, "1023 B"),
            (1024, "1.0 KiB"),
            (1536, "1.5 KiB"),
            (5 * 1024**2, "5.0 MiB"),
            (3 * 1024**3, "3.0 GiB"),
            (5000 * 1024**3, "5000.0 GiB"),  # GiB is the ceiling unit
        ],
    )
    def test_formats(self, count, expected):
        assert format_bytes(count) == expected

    def test_round_trips_with_parse(self):
        assert parse_size("500M") == 500 * 1024**2
        assert format_bytes(parse_size("500M")) == "500.0 MiB"


class TestCacheIntegration:
    def test_evict_accepts_suffixed_max_bytes(self, tmp_path, monkeypatch):
        from repro.engine import cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache.store("a" * 32, b"x", meta={"scenario": "s"})
        victims = cache.evict(max_bytes="0K")
        assert [v.key for v in victims] == ["a" * 32]
