"""Static checks on the example scripts.

Examples must parse, expose a ``main`` function, carry a module
docstring with a run command, and import only the public API.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_parses(self, script):
        ast.parse(script.read_text())

    def test_has_docstring_with_run_command(self, script):
        tree = ast.parse(script.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{script.name} missing module docstring"
        assert f"examples/{script.name}" in doc, "docstring should show the run command"

    def test_defines_main_guarded(self, script):
        text = script.read_text()
        assert "def main(" in text
        assert '__name__ == "__main__"' in text

    def test_imports_only_public_api(self, script):
        tree = ast.parse(script.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    # No private-module imports in examples.
                    assert "._" not in node.module
                    for alias in node.names:
                        assert not alias.name.startswith("_"), (
                            f"{script.name} imports private name {alias.name}"
                        )


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
