"""Tests for the CIL task-inference extension (paper future work)."""

import numpy as np
import pytest

from repro.continual import Scenario, run_continual
from repro.core import CDCLConfig, CDCLTrainer


class TestPredictCilInferred:
    @pytest.fixture(scope="class")
    def trained(self, digit_stream_3tasks):
        trainer = CDCLTrainer(
            CDCLConfig.fast(epochs=4, warmup_epochs=1),
            in_channels=1,
            image_size=16,
            rng=0,
        )
        for task in digit_stream_3tasks:
            trainer.observe_task(task)
        return trainer

    def test_predictions_in_global_range(self, trained, digit_stream_3tasks):
        images, _ = digit_stream_3tasks[1].target_test.arrays()
        out = trained.network.predict_cil_inferred(images)
        assert out.min() >= 0
        assert out.max() < digit_stream_3tasks.total_classes

    def test_shape_matches_input(self, trained, digit_stream_3tasks):
        images, _ = digit_stream_3tasks[0].target_test.arrays()
        assert trained.network.predict_cil_inferred(images).shape == (len(images),)

    def test_single_task_reduces_to_til(self, tiny_stream):
        trainer = CDCLTrainer(
            CDCLConfig.fast(epochs=3, warmup_epochs=1), 1, 16, rng=0
        )
        trainer.observe_task(tiny_stream[0])
        images, _ = tiny_stream[0].target_test.arrays()
        inferred = trainer.network.predict_cil_inferred(images)
        til = trainer.network.predict_til(images, 0)
        assert np.array_equal(inferred, til)

    def test_config_flag_switches_predict_global(self, tiny_stream):
        config = CDCLConfig.fast(epochs=3, warmup_epochs=1, cil_task_inference=True)
        trainer = CDCLTrainer(config, 1, 16, rng=0)
        trainer.observe_task(tiny_stream[0])
        trainer.observe_task(tiny_stream[1])
        images, _ = tiny_stream[0].target_test.arrays()
        flagged = trainer.predict_global(images, Scenario.CIL)
        inferred = trainer.network.predict_cil_inferred(images)
        assert np.array_equal(flagged, inferred)

    def test_runs_full_cil_protocol(self, digit_stream_3tasks):
        config = CDCLConfig.fast(epochs=3, warmup_epochs=1, cil_task_inference=True)
        trainer = CDCLTrainer(config, 1, 16, rng=0)
        result = run_continual(trainer, digit_stream_3tasks, Scenario.CIL)
        assert 0.0 <= result.acc <= 1.0
