"""Cross-module integration tests: the qualitative claims at test scale."""

import numpy as np
import pytest

from repro.baselines import BaselineConfig, FineTune
from repro.continual import Scenario, run_continual
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import mnist_usps
from repro.theory import proxy_a_distance


@pytest.fixture(scope="module")
def trained_cdcl():
    """One CDCL trained on a 2-task digit stream, shared by the class."""
    stream = mnist_usps(
        "mnist->usps", samples_per_class=12, test_samples_per_class=8, rng=3
    )
    stream.tasks = stream.tasks[:2]
    config = CDCLConfig(embed_dim=32, depth=1, epochs=8, warmup_epochs=3, memory_size=60)
    trainer = CDCLTrainer(config, in_channels=1, image_size=16, rng=0)
    result = run_continual(trainer, stream, Scenario.TIL)
    return trainer, stream, result


class TestCDCLLearns:
    def test_beats_chance_on_first_task(self, trained_cdcl):
        trainer, stream, result = trained_cdcl
        assert result.r_matrix.values[0, 0] > 0.6

    def test_source_domain_mastered(self, trained_cdcl):
        trainer, stream, _result = trained_cdcl
        xs, ys = stream[0].source_train.arrays()
        assert (trainer.network.predict_til(xs, 0) == ys).mean() > 0.7

    def test_memory_balanced_after_two_tasks(self, trained_cdcl):
        trainer, _stream, _result = trained_cdcl
        per_task = [len(trainer.memory.records_for_task(t)) for t in range(2)]
        assert per_task[0] > 0 and per_task[1] > 0
        assert abs(per_task[0] - per_task[1]) <= max(per_task) // 2 + 1

    def test_features_align_domains(self, trained_cdcl):
        """After adaptation, source/target features of the same task are
        less separable than the raw pixels (feature alignment)."""
        trainer, stream, _result = trained_cdcl
        task = stream[0]
        xs = task.source_train.arrays()[0]
        xt = task.target_train.arrays()[0]
        raw_divergence = proxy_a_distance(
            xs.reshape(len(xs), -1), xt.reshape(len(xt), -1), rng=0
        )
        feats_s = trainer.embed(xs, 0)
        feats_t = trainer.embed(xt, 0)
        feat_divergence = proxy_a_distance(feats_s, feats_t, rng=0)
        assert feat_divergence <= raw_divergence + 0.25


class TestStateSerialization:
    def test_trained_network_roundtrips(self, trained_cdcl):
        trainer, stream, _result = trained_cdcl
        from repro.core import CDCLNetwork

        clone = CDCLNetwork(trainer.config, in_channels=1, image_size=16, rng=99)
        clone.add_task(2)
        clone.add_task(2)
        clone.load_state_dict(trainer.network.state_dict())
        images, _ = stream[0].target_test.arrays()
        assert np.array_equal(
            clone.predict_til(images, 0), trainer.network.predict_til(images, 0)
        )
        assert np.array_equal(
            clone.predict_cil(images), trainer.network.predict_cil(images)
        )


class TestBaselineContrast:
    def test_finetune_runs_and_is_scored(self, tiny_stream):
        method = FineTune(BaselineConfig.fast(epochs=6), 1, 16, rng=0)
        result = run_continual(method, tiny_stream, Scenario.TIL)
        # FineTune fits the *source*; we only require protocol sanity here
        # (the benchmark suite asserts the CDCL-vs-baseline ordering).
        assert 0.0 <= result.acc <= 1.0
        assert result.r_matrix.values.shape == (2, 2)
