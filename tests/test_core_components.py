"""Tests for CDCL's architectural components: tokenizer, task-conditioned
attention, sequence pooling and the assembled network."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    CDCLConfig,
    CDCLEncoder,
    CDCLNetwork,
    ConvTokenizer,
    SequencePool,
    TaskConditionedAttention,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(9)


class TestConvTokenizer:
    def test_output_shape(self, rng):
        tok = ConvTokenizer(1, embed_dim=16, num_layers=2, image_size=16, rng=rng)
        out = tok(Tensor(rng.normal(size=(2, 1, 16, 16))))
        assert out.shape == (2, 16, 16)  # 16/2/2 = 4 -> 16 tokens
        assert tok.seq_len == 16
        assert tok.grid_side == 4

    def test_single_layer(self, rng):
        tok = ConvTokenizer(3, embed_dim=8, num_layers=1, image_size=16, rng=rng)
        assert tok.seq_len == 64

    def test_too_many_layers_raises(self):
        with pytest.raises(ValueError):
            ConvTokenizer(1, 8, num_layers=5, image_size=8)

    def test_zero_layers_raises(self):
        with pytest.raises(ValueError):
            ConvTokenizer(1, 8, num_layers=0, image_size=8)

    def test_gradient_flows(self, rng):
        tok = ConvTokenizer(1, 8, num_layers=1, image_size=8, rng=rng)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)), requires_grad=True)
        tok(x).sum().backward()
        assert x.grad is not None


class TestTaskConditionedAttention:
    def _attn(self, rng, dim=8, heads=2, seq=4):
        return TaskConditionedAttention(dim, heads, seq, rng=rng)

    def test_requires_task_instantiation(self, rng):
        attn = self._attn(rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        with pytest.raises(IndexError):
            attn(x, 0)

    def test_add_task_returns_index(self, rng):
        attn = self._attn(rng)
        assert attn.add_task() == 0
        assert attn.add_task() == 1
        assert attn.num_tasks == 2

    def test_self_attention_shape(self, rng):
        attn = self._attn(rng)
        attn.add_task()
        out = attn(Tensor(rng.normal(size=(2, 4, 8))), 0)
        assert out.shape == (2, 4, 8)

    def test_cross_attention_uses_context(self, rng):
        attn = self._attn(rng)
        attn.add_task()
        x = Tensor(rng.normal(size=(2, 4, 8)))
        ctx = Tensor(rng.normal(size=(2, 4, 8)))
        assert not np.allclose(attn(x, 0).data, attn(x, 0, ctx).data)

    def test_new_task_freezes_previous(self, rng):
        attn = self._attn(rng)
        attn.add_task()
        attn.add_task()
        for p in attn.task_parameters(0):
            assert not p.requires_grad
        for p in attn.task_parameters(1):
            assert p.requires_grad

    def test_old_task_keys_get_no_gradient(self, rng):
        attn = self._attn(rng)
        attn.add_task()
        attn.add_task()
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        attn(x, 1).sum().backward()
        assert all(p.grad is None for p in attn.task_parameters(0))
        assert any(p.grad is not None for p in attn.task_parameters(1))

    def test_different_tasks_give_different_outputs(self, rng):
        attn = self._attn(rng)
        attn.add_task()
        attn.add_task()
        x = Tensor(rng.normal(size=(1, 4, 8)))
        assert not np.allclose(attn(x, 0).data, attn(x, 1).data)

    def test_dim_heads_mismatch_raises(self):
        with pytest.raises(ValueError):
            TaskConditionedAttention(10, 3, 4)

    def test_bias_shape_is_one_by_seq(self, rng):
        attn = self._attn(rng, seq=6)
        attn.add_task()
        bias = attn.task_parameters(0)[-1]
        assert bias.shape == (1, 6)


class TestCDCLEncoder:
    def test_add_task_spans_all_layers(self, rng):
        enc = CDCLEncoder(dim=8, depth=3, num_heads=2, seq_len=4, rng=rng)
        enc.add_task()
        for layer in enc.layers:
            assert layer.attn.num_tasks == 1
        assert len(enc.task_parameters(0)) == 3 * 2  # (K_i weight + b_i) x depth

    def test_forward_shapes(self, rng):
        enc = CDCLEncoder(dim=8, depth=2, num_heads=2, seq_len=4, rng=rng)
        enc.add_task()
        x = Tensor(rng.normal(size=(2, 4, 8)))
        assert enc(x, 0).shape == (2, 4, 8)
        ctx = Tensor(rng.normal(size=(2, 4, 8)))
        assert enc(x, 0, ctx).shape == (2, 4, 8)


class TestSequencePool:
    def test_output_shape(self, rng):
        pool = SequencePool(8, rng=rng)
        out = pool(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 8)

    def test_pool_is_convex_combination(self, rng):
        """Pooled vector lies in the convex hull of the tokens."""
        pool = SequencePool(4, rng=rng)
        tokens = rng.normal(size=(1, 6, 4))
        out = pool(Tensor(tokens)).data[0]
        assert out.min() >= tokens[0].min() - 1e-9
        assert out.max() <= tokens[0].max() + 1e-9

    def test_gradient_flows(self, rng):
        pool = SequencePool(4, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        pool(x).sum().backward()
        assert x.grad is not None


class TestCDCLNetwork:
    def _net(self, rng):
        config = CDCLConfig.fast()
        return CDCLNetwork(config, in_channels=1, image_size=16, rng=rng)

    def test_add_task_grows_heads(self, rng):
        net = self._net(rng)
        net.add_task(2)
        net.add_task(2)
        assert net.num_tasks == 2
        assert net.total_classes == 4
        assert net.class_offset(1) == 2

    def test_features_shape(self, rng):
        net = self._net(rng)
        net.add_task(2)
        feats = net.features(rng.normal(size=(3, 1, 16, 16)), 0)
        assert feats.shape == (3, net.config.embed_dim)

    def test_til_cil_logit_shapes(self, rng):
        net = self._net(rng)
        net.add_task(2)
        net.add_task(2)
        feats = net.features(rng.normal(size=(3, 1, 16, 16)), 1)
        assert net.til_logits(feats, 1).shape == (3, 2)
        assert net.cil_logits(feats).shape == (3, 4)
        assert net.cil_logits(feats, up_to_task=0).shape == (3, 2)

    def test_predictions_in_range(self, rng):
        net = self._net(rng)
        net.add_task(2)
        net.add_task(2)
        images = rng.normal(size=(5, 1, 16, 16))
        til = net.predict_til(images, 0)
        assert set(np.unique(til)).issubset({0, 1})
        cil = net.predict_cil(images)
        assert set(np.unique(cil)).issubset({0, 1, 2, 3})

    def test_invalid_task_raises(self, rng):
        net = self._net(rng)
        with pytest.raises(IndexError):
            net.features(rng.normal(size=(1, 1, 16, 16)), 0)

    def test_cross_attention_changes_features(self, rng):
        net = self._net(rng)
        net.add_task(2)
        x = rng.normal(size=(2, 1, 16, 16))
        ctx = rng.normal(size=(2, 1, 16, 16))
        plain = net.features(x, 0).data
        mixed = net.features(x, 0, context=ctx).data
        assert not np.allclose(plain, mixed)

    def test_simple_attention_ablation_ignores_context(self, rng):
        config = CDCLConfig.fast(use_cross_attention=False)
        net = CDCLNetwork(config, in_channels=1, image_size=16, rng=rng)
        net.add_task(2)
        x = rng.normal(size=(2, 1, 16, 16))
        ctx = rng.normal(size=(2, 1, 16, 16))
        assert np.allclose(net.features(x, 0).data, net.features(x, 0, context=ctx).data)

    def test_new_task_parameters_registered(self, rng):
        net = self._net(rng)
        net.add_task(2)
        params = net.new_task_parameters(0)
        # K_i + b_i per encoder layer, TIL head w+b, CIL head w+b.
        expected = net.config.depth * 2 + 4
        assert len(params) == expected
