"""Tests for the CDCL objective functions (Eqs. 9-23)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check
from repro.core import losses
from repro.nn.functional import cross_entropy


@pytest.fixture()
def rng():
    return np.random.default_rng(13)


class TestSupervisionAndPairLosses:
    def test_supervision_is_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 0])
        assert np.isclose(
            losses.supervision_loss(logits, labels).item(),
            cross_entropy(logits, labels).item(),
        )

    def test_pair_target_loss_uses_source_labels(self, rng):
        target_logits = Tensor(rng.normal(size=(4, 3)))
        pair_labels = np.array([1, 1, 0, 2])
        assert np.isclose(
            losses.pair_target_loss(target_logits, pair_labels).item(),
            cross_entropy(target_logits, pair_labels).item(),
        )


class TestDistillationLoss:
    def test_zero_gradient_to_teacher(self, rng):
        mixed = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        target = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        losses.distillation_loss(mixed, target).backward()
        assert mixed.grad is None  # teacher is detached
        assert target.grad is not None

    def test_minimized_when_matching_teacher(self, rng):
        teacher_logits = rng.normal(size=(5, 4))
        same = losses.distillation_loss(
            Tensor(teacher_logits), Tensor(teacher_logits.copy())
        ).item()
        other = losses.distillation_loss(
            Tensor(teacher_logits), Tensor(rng.normal(size=(5, 4)) * 3)
        ).item()
        assert same < other

    def test_gradient_check(self, rng):
        teacher = Tensor(rng.normal(size=(3, 4)))
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda x: losses.distillation_loss(teacher, x), [x])


class TestBlockLoss:
    def test_warmup_form_is_source_only(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 0])
        assert np.isclose(
            losses.block_loss(logits, labels).item(),
            cross_entropy(logits, labels).item(),
        )

    def test_full_block_sums_three_terms(self, rng):
        s = Tensor(rng.normal(size=(4, 3)))
        t = Tensor(rng.normal(size=(4, 3)))
        m = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 0])
        expected = (
            losses.supervision_loss(s, labels).item()
            + losses.pair_target_loss(t, labels).item()
            + losses.distillation_loss(m, t).item()
        )
        assert np.isclose(losses.block_loss(s, labels, t, m).item(), expected)

    def test_pair_without_mixed(self, rng):
        s = Tensor(rng.normal(size=(2, 3)))
        t = Tensor(rng.normal(size=(2, 3)))
        labels = np.array([0, 1])
        expected = (
            losses.supervision_loss(s, labels).item()
            + losses.pair_target_loss(t, labels).item()
        )
        assert np.isclose(losses.block_loss(s, labels, t).item(), expected)


class TestRehearsalLosses:
    def test_st_loss_decomposes(self, rng):
        s = Tensor(rng.normal(size=(4, 6)))
        t = Tensor(rng.normal(size=(4, 6)))
        labels = np.array([0, 5, 2, 3])
        expected = cross_entropy(s, labels).item() + cross_entropy(t, labels).item()
        assert np.isclose(losses.rehearsal_st_loss(s, t, labels).item(), expected)

    def test_logit_loss_zero_when_outputs_match_memory(self, rng):
        stored_s = rng.normal(size=(4, 5))
        stored_t = rng.normal(size=(4, 5))
        value = losses.rehearsal_logit_loss(
            stored_s, stored_t, Tensor(stored_s.copy()), Tensor(stored_t.copy())
        ).item()
        assert abs(value) < 1e-6

    def test_logit_loss_positive_when_drifted(self, rng):
        stored_s = rng.normal(size=(4, 5))
        stored_t = rng.normal(size=(4, 5))
        drift_s = Tensor(stored_s + rng.normal(size=(4, 5)) * 2)
        drift_t = Tensor(stored_t + rng.normal(size=(4, 5)) * 2)
        value = losses.rehearsal_logit_loss(stored_s, stored_t, drift_s, drift_t).item()
        assert value > 0

    def test_logit_loss_gradient_restores_memory(self, rng):
        """Gradient descent on the logit loss pulls outputs toward stored ones."""
        stored = rng.normal(size=(3, 4))
        current = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        before = losses.rehearsal_logit_loss(
            stored, stored, current, current
        )
        before.backward()
        stepped = Tensor(current.data - 0.5 * current.grad, requires_grad=True)
        after = losses.rehearsal_logit_loss(stored, stored, stepped, stepped)
        assert after.item() < before.item()

    def test_logit_loss_grad_check(self, rng):
        stored_s = rng.normal(size=(3, 4))
        stored_t = rng.normal(size=(3, 4))
        s = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        t = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(
            lambda s, t: losses.rehearsal_logit_loss(stored_s, stored_t, s, t), [s, t]
        )

    def test_distill_loss_is_shared_implementation(self, rng):
        m = Tensor(rng.normal(size=(2, 3)))
        t = Tensor(rng.normal(size=(2, 3)))
        assert np.isclose(
            losses.rehearsal_distill_loss(m, t).item(),
            losses.distillation_loss(m, t).item(),
        )
