"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestArgumentParsing:
    def test_requires_artifact(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["--profile", "huge", "table1"])


class TestSmokeExecution:
    def test_figure2_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_table3_smoke_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main(["table3", "--domains", "clp", "skt"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
