"""Tests for the ``python -m repro.experiments`` command-line interface."""

import json

import pytest

from repro.engine import cache
from repro.experiments.__main__ import main


class TestArgumentParsing:
    def test_requires_artifact(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["--profile", "huge", "table1"])


class TestSmokeExecution:
    def test_figure2_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_table3_smoke_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main(["table3", "--domains", "clp", "skt"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out


class TestCacheCommands:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))

    def _seed_entry(self, key="a" * 32, scenario="digits"):
        cache.store(key, b"payload", meta={"method": "CDCL", "scenario": scenario, "seed": 0})
        return key

    def test_cache_stats_reports_counts_and_bytes(self, capsys):
        self._seed_entry()
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "entries         : 1" in out
        assert "digits" in out

    def test_cache_stats_json_lists_keys(self, capsys):
        key = self._seed_entry()
        assert main(["cache-stats", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 1
        assert report["keys"] == [key]

    def test_cache_inspect(self, capsys):
        key = self._seed_entry()
        assert main(["cache-inspect", key]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["spec"]["method"] == "CDCL"

    def test_cache_inspect_unknown_key(self, capsys):
        assert main(["cache-inspect", "0" * 32]) == 2

    def test_cache_evict_requires_a_policy(self, capsys):
        assert main(["cache-evict"]) == 2

    def test_cache_evict_max_bytes_enforces_bound(self, capsys):
        self._seed_entry("a" * 32)
        self._seed_entry("b" * 32, scenario="visda")
        assert main(["cache-evict", "--max-bytes", "0"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert cache.stats()["entries"] == 0

    def test_cache_evict_dry_run_keeps_entries(self, capsys):
        self._seed_entry()
        assert main(["cache-evict", "--max-entries", "0", "--dry-run"]) == 0
        assert "would evict 1" in capsys.readouterr().out
        assert cache.stats()["entries"] == 1

    def test_cache_evict_rejects_bad_size(self):
        with pytest.raises(SystemExit):
            main(["cache-evict", "--max-bytes", "lots"])

    def test_cache_verify_flags_corruption(self, capsys):
        key = self._seed_entry()
        (cache.cache_dir() / f"{key}.pkl").write_bytes(b"garbage")
        assert main(["cache-verify"]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert main(["cache-verify", "--repair"]) == 0
        capsys.readouterr()
        assert main(["cache-verify"]) == 0

    def test_checkpoint_conflicts_with_no_cache(self, capsys):
        assert main(["--checkpoint", "--no-cache", "figure2"]) == 2
        assert "checkpoint" in capsys.readouterr().err


class TestClusterCommands:
    def test_worker_fails_cleanly_when_coordinator_unreachable(self, capsys):
        # Port 1 is never listening; the worker must give up with a
        # tidy error, not a traceback.
        code = main(
            [
                "cluster-worker",
                "--coordinator",
                "127.0.0.1:1",
                "--poll-interval",
                "0.01",
            ]
        )
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_coordinator_and_worker_round_trip(self, capsys):
        """A coordinator thread serves a real worker started via the CLI."""
        import threading
        import time

        from repro.cluster import ClusterClient, CoordinatorThread

        with CoordinatorThread(check_interval=0.05) as (host, port):
            outcome = {}

            def run_worker_cli():
                outcome["code"] = main(
                    [
                        "cluster-worker",
                        "--coordinator",
                        f"{host}:{port}",
                        "--poll-interval",
                        "0.05",
                    ]
                )

            thread = threading.Thread(target=run_worker_cli, daemon=True)
            thread.start()
            client = ClusterClient(f"{host}:{port}")
            # Drain only after the worker registered — shutting down
            # mid-hello would race its registration connect.
            deadline = time.monotonic() + 10
            while not client.stats()["workers"]:
                assert time.monotonic() < deadline, "worker never registered"
                time.sleep(0.05)
            client.shutdown()
            thread.join(timeout=10)
        assert outcome["code"] == 0
        assert "0 cell(s) executed" in capsys.readouterr().out

    def test_rejects_malformed_cluster_address(self, capsys):
        code = main(["--cluster", "http://nope:1", "multiseed", "--seeds", "0"])
        assert code == 2
        assert "scheme" in capsys.readouterr().err


class TestNounVerbGroups:
    """The 0.6 noun-verb surface and its deprecated flat aliases."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))

    def _seed_entry(self, key="a" * 32, scenario="digits"):
        cache.store(key, b"payload", meta={"method": "CDCL", "scenario": scenario, "seed": 0})
        return key

    def test_cache_stats_noun_verb(self, capsys):
        self._seed_entry()
        assert main(["cache", "stats"]) == 0
        captured = capsys.readouterr()
        assert "entries         : 1" in captured.out
        assert "deprecated" not in captured.err

    def test_deprecated_alias_still_works_and_warns(self, capsys):
        self._seed_entry()
        assert main(["cache-stats"]) == 0
        captured = capsys.readouterr()
        assert "entries         : 1" in captured.out
        assert "'cache-stats' is deprecated" in captured.err
        assert "cache stats" in captured.err

    def test_alias_rewrite_skips_value_taking_globals(self, capsys):
        # --profile consumes "smoke": the scan must not mistake the
        # value for the subcommand word.
        self._seed_entry()
        assert main(["--profile", "smoke", "cache-stats", "--json"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["entries"] == 1
        assert "deprecated" in captured.err

    def test_cache_verb_required(self):
        with pytest.raises(SystemExit):
            main(["cache"])

    def test_cache_inspect_both_spellings(self, capsys):
        key = self._seed_entry()
        assert main(["cache", "inspect", key]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["cache-inspect", key]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_cache_evict_noun_verb(self, capsys):
        self._seed_entry()
        assert main(["cache", "evict", "--max-entries", "0"]) == 0
        assert "evicted 1" in capsys.readouterr().out

    def test_cluster_worker_noun_verb_fails_cleanly(self, capsys):
        code = main(
            ["cluster", "worker", "--coordinator", "127.0.0.1:1",
             "--poll-interval", "0.01"]
        )
        assert code == 2
        assert "unreachable" in capsys.readouterr().err


class TestRunsCommands:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))

    def _seed_entry(self, key="a" * 32, method="CDCL", seed=0):
        cache.store(
            key,
            b"payload",
            meta={"method": method, "scenario": "digits", "seed": seed,
                  "profile": "smoke", "dtype": "float32"},
        )
        return key

    def test_runs_query_empty_store(self, capsys):
        assert main(["runs", "query"]) == 0
        assert "0 rows" in capsys.readouterr().out

    def test_runs_query_lists_indexed_cells(self, capsys):
        self._seed_entry("a" * 32, method="CDCL")
        self._seed_entry("b" * 32, method="DER", seed=1)
        assert main(["runs", "query"]) == 0
        out = capsys.readouterr().out
        assert "2 rows" in out and "CDCL" in out and "DER" in out
        assert main(["runs", "query", "--method", "DER", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        # A metrics-less payload still exports one row (acc empty).
        [row] = document["rows"]
        assert row["cache_key"] == "b" * 32
        assert row["acc"] is None
        assert main(["runs", "query", "--method", "nope"]) == 0
        assert "0 rows" in capsys.readouterr().out

    def test_runs_query_unknown_since_sha_is_tidy(self, capsys):
        self._seed_entry()
        assert main(["runs", "query", "--since-sha", "feedface"]) == 2
        assert "no rows" in capsys.readouterr().err

    def test_runs_backfill_reindexes_a_wiped_store(self, capsys):
        from repro.store import RunStore

        self._seed_entry()
        store = RunStore()
        store.clear()
        assert main(["runs", "backfill"]) == 0
        out = capsys.readouterr().out
        assert "1 indexed" in out
        assert store.count() == 1

    def test_runs_report_missing_cell_points_at_backfill(self, capsys):
        assert main(["--profile", "smoke", "runs", "report", "table1"]) == 2
        assert "backfill" in capsys.readouterr().err

    def test_runs_report_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["runs", "report", "table9"])

    def test_runs_diff_empty_sides(self, capsys):
        assert main(["runs", "diff", "aaa", "bbb"]) == 0
        assert "0 matched" in capsys.readouterr().out

    def test_runs_verb_required(self):
        with pytest.raises(SystemExit):
            main(["runs"])
