"""Tests for the ``python -m repro.experiments`` command-line interface."""

import json

import pytest

from repro.engine import cache
from repro.experiments.__main__ import main


class TestArgumentParsing:
    def test_requires_artifact(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["--profile", "huge", "table1"])


class TestSmokeExecution:
    def test_figure2_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_table3_smoke_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main(["table3", "--domains", "clp", "skt"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out


class TestCacheCommands:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine-cache"))

    def _seed_entry(self, key="a" * 32, scenario="digits"):
        cache.store(key, b"payload", meta={"method": "CDCL", "scenario": scenario, "seed": 0})
        return key

    def test_cache_stats_reports_counts_and_bytes(self, capsys):
        self._seed_entry()
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "entries         : 1" in out
        assert "digits" in out

    def test_cache_stats_json_lists_keys(self, capsys):
        key = self._seed_entry()
        assert main(["cache-stats", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 1
        assert report["keys"] == [key]

    def test_cache_inspect(self, capsys):
        key = self._seed_entry()
        assert main(["cache-inspect", key]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["spec"]["method"] == "CDCL"

    def test_cache_inspect_unknown_key(self, capsys):
        assert main(["cache-inspect", "0" * 32]) == 2

    def test_cache_evict_requires_a_policy(self, capsys):
        assert main(["cache-evict"]) == 2

    def test_cache_evict_max_bytes_enforces_bound(self, capsys):
        self._seed_entry("a" * 32)
        self._seed_entry("b" * 32, scenario="visda")
        assert main(["cache-evict", "--max-bytes", "0"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert cache.stats()["entries"] == 0

    def test_cache_evict_dry_run_keeps_entries(self, capsys):
        self._seed_entry()
        assert main(["cache-evict", "--max-entries", "0", "--dry-run"]) == 0
        assert "would evict 1" in capsys.readouterr().out
        assert cache.stats()["entries"] == 1

    def test_cache_evict_rejects_bad_size(self):
        with pytest.raises(SystemExit):
            main(["cache-evict", "--max-bytes", "lots"])

    def test_cache_verify_flags_corruption(self, capsys):
        key = self._seed_entry()
        (cache.cache_dir() / f"{key}.pkl").write_bytes(b"garbage")
        assert main(["cache-verify"]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert main(["cache-verify", "--repair"]) == 0
        capsys.readouterr()
        assert main(["cache-verify"]) == 0

    def test_checkpoint_conflicts_with_no_cache(self, capsys):
        assert main(["--checkpoint", "--no-cache", "figure2"]) == 2
        assert "checkpoint" in capsys.readouterr().err


class TestClusterCommands:
    def test_worker_fails_cleanly_when_coordinator_unreachable(self, capsys):
        # Port 1 is never listening; the worker must give up with a
        # tidy error, not a traceback.
        code = main(
            [
                "cluster-worker",
                "--coordinator",
                "127.0.0.1:1",
                "--poll-interval",
                "0.01",
            ]
        )
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_coordinator_and_worker_round_trip(self, capsys):
        """A coordinator thread serves a real worker started via the CLI."""
        import threading
        import time

        from repro.cluster import ClusterClient, CoordinatorThread

        with CoordinatorThread(check_interval=0.05) as (host, port):
            outcome = {}

            def run_worker_cli():
                outcome["code"] = main(
                    [
                        "cluster-worker",
                        "--coordinator",
                        f"{host}:{port}",
                        "--poll-interval",
                        "0.05",
                    ]
                )

            thread = threading.Thread(target=run_worker_cli, daemon=True)
            thread.start()
            client = ClusterClient(f"{host}:{port}")
            # Drain only after the worker registered — shutting down
            # mid-hello would race its registration connect.
            deadline = time.monotonic() + 10
            while not client.stats()["workers"]:
                assert time.monotonic() < deadline, "worker never registered"
                time.sleep(0.05)
            client.shutdown()
            thread.join(timeout=10)
        assert outcome["code"] == 0
        assert "0 cell(s) executed" in capsys.readouterr().out

    def test_rejects_malformed_cluster_address(self, capsys):
        code = main(["--cluster", "http://nope:1", "multiseed", "--seeds", "0"])
        assert code == 2
        assert "scheme" in capsys.readouterr().err
