"""Tests for ACC/FGT metrics and the R-matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continual import (
    RMatrix,
    average_accuracy,
    backward_transfer,
    forgetting,
    forward_transfer,
)


class TestRMatrix:
    def test_record_and_row(self):
        r = RMatrix(3)
        r.record(0, 0, 0.9)
        assert r.row(0)[0] == 0.9
        assert np.isnan(r.row(0)[1])

    def test_bounds_validation(self):
        r = RMatrix(2)
        with pytest.raises(IndexError):
            r.record(2, 0, 0.5)
        with pytest.raises(IndexError):
            r.record(0, 2, 0.5)
        with pytest.raises(ValueError):
            r.record(0, 0, 1.5)

    def test_zero_tasks_rejected(self):
        with pytest.raises(ValueError):
            RMatrix(0)

    def test_metric_shortcuts(self):
        r = RMatrix(2)
        r.record(0, 0, 1.0)
        r.record(1, 0, 0.5)
        r.record(1, 1, 0.8)
        assert np.isclose(r.average_accuracy(), 0.65)
        assert np.isclose(r.forgetting(), 0.5)


class TestAverageAccuracy:
    def test_simple(self):
        r = np.array([[1.0, np.nan], [0.6, 0.8]])
        assert np.isclose(average_accuracy(r), 0.7)

    def test_ignores_nan_in_final_row(self):
        r = np.array([[1.0, np.nan], [0.6, np.nan]])
        assert np.isclose(average_accuracy(r), 0.6)

    def test_empty_final_row_raises(self):
        r = np.full((2, 2), np.nan)
        with pytest.raises(ValueError):
            average_accuracy(r)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            average_accuracy(np.zeros((2, 3)))


class TestForgetting:
    def test_no_forgetting(self):
        r = np.array([[0.9, np.nan], [0.9, 0.8]])
        assert forgetting(r) == 0.0

    def test_full_forgetting(self):
        r = np.array([[1.0, np.nan], [0.0, 0.9]])
        assert np.isclose(forgetting(r), 1.0)

    def test_uses_historical_peak(self):
        # Task 0 improves after task 1 (backward transfer), then drops.
        r = np.array(
            [
                [0.5, np.nan, np.nan],
                [0.9, 0.7, np.nan],
                [0.6, 0.7, 0.8],
            ]
        )
        # Peak for task0 is 0.9 -> drop 0.3; task1 peak 0.7 -> drop 0.
        assert np.isclose(forgetting(r), 0.15)

    def test_single_task_returns_zero(self):
        assert forgetting(np.array([[0.9]])) == 0.0

    def test_negative_when_improving(self):
        r = np.array([[0.5, np.nan], [0.7, 0.9]])
        assert forgetting(r) < 0


class TestTransfers:
    def test_backward_transfer(self):
        r = np.array([[0.8, np.nan], [0.9, 0.7]])
        assert np.isclose(backward_transfer(r), 0.1)

    def test_forward_transfer(self):
        r = np.array([[0.8, 0.4], [0.9, 0.7]])
        baseline = np.array([0.1, 0.1])
        assert np.isclose(forward_transfer(r, baseline), 0.3)

    def test_single_task_bwt_zero(self):
        assert backward_transfer(np.array([[1.0]])) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    t=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_property_acc_in_unit_interval(t, seed):
    rng = np.random.default_rng(seed)
    r = np.tril(rng.random((t, t)))
    r[np.triu_indices(t, 1)] = np.nan
    assert 0.0 <= average_accuracy(r) <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    t=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_property_forgetting_bounded(t, seed):
    """FGT is within [-1, 1] and never exceeds the peak accuracy."""
    rng = np.random.default_rng(seed)
    r = np.tril(rng.random((t, t)))
    r[np.triu_indices(t, 1)] = np.nan
    f = forgetting(r)
    assert -1.0 <= f <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    t=st.integers(2, 5),
    seed=st.integers(0, 10_000),
)
def test_property_perfect_retention_zero_forgetting(t, seed):
    """If accuracy on each task never changes after learning it, FGT == 0."""
    rng = np.random.default_rng(seed)
    final = rng.random(t)
    r = np.full((t, t), np.nan)
    for i in range(t):
        for j in range(i + 1):
            r[i, j] = final[j]
    assert np.isclose(forgetting(r), 0.0)
