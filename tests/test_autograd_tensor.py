"""Unit tests for the Tensor class and graph machinery."""

import numpy as np
import pytest

from repro.autograd import Tensor, arange, is_grad_enabled, no_grad, ones, tensor, zeros
from repro.autograd.tensor import unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_from_tensor_shares_data(self):
        a = tensor([1.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_requires_grad_flag(self):
        t = tensor([1.0], requires_grad=True)
        assert t.requires_grad

    def test_zeros_ones_arange(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert np.allclose(arange(4).data, [0, 1, 2, 3])

    def test_item_and_len(self):
        assert tensor([[5.0]]).item() == 5.0
        assert len(tensor([1.0, 2.0])) == 2

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(tensor([1.0]))


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = tensor([3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad, [6.0])

    def test_nonscalar_requires_grad_argument(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_detached_raises(self):
        x = tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        assert np.allclose(x.grad, [6.0])

    def test_zero_grad(self):
        x = tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # y = x*x + x uses x twice; gradient must sum both paths.
        x = tensor([2.0], requires_grad=True)
        y = x * x + x
        y.sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_deep_chain(self):
        x = tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        assert np.allclose(x.grad, [1.1**50])

    def test_branch_without_grad_is_ignored(self):
        x = tensor([1.0], requires_grad=True)
        c = tensor([5.0])  # constant
        y = (x * c).sum()
        y.backward()
        assert np.allclose(x.grad, [5.0])
        assert c.grad is None

    def test_detach_cuts_graph(self):
        x = tensor([2.0], requires_grad=True)
        y = (x * x).detach() * x
        y.sum().backward()
        # Only the outer multiplication contributes: d(4*x)/dx = 4.
        assert np.allclose(x.grad, [4.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError()
        except ValueError:
            pass
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_prepended_axes_summed(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        assert np.all(out == 4)

    def test_stretched_axis_summed(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.all(out == 2)

    def test_scalar_target(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 6

    def test_broadcast_add_gradients(self):
        a = tensor(np.ones((2, 3)), requires_grad=True)
        b = tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.all(b.grad == 2)


class TestShapeMethods:
    def test_reshape_and_flatten(self):
        x = tensor(np.arange(6.0), requires_grad=True)
        y = x.reshape(2, 3)
        assert y.shape == (2, 3)
        assert x.reshape((2, 3)).shape == (2, 3)
        z = y.flatten()
        assert z.shape == (6,)

    def test_transpose_default_and_axes(self):
        x = tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)
        assert x.transpose((1, 0, 2)).shape == (3, 2, 4)
        assert x.T.shape == (4, 3, 2)

    def test_swapaxes(self):
        x = tensor(np.zeros((2, 3, 4)))
        assert x.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_grad(self):
        x = tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x[0]
        y.sum().backward()
        assert np.allclose(x.grad, [[1, 1, 1], [0, 0, 0]])

    def test_comparison_returns_ndarray(self):
        x = tensor([1.0, 2.0])
        assert isinstance(x > 1.5, np.ndarray)
        assert (x > 1.5).tolist() == [False, True]

    def test_argmax(self):
        x = tensor([[1.0, 5.0], [7.0, 2.0]])
        assert x.argmax(axis=1).tolist() == [1, 0]
