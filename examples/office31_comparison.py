"""Office-31 A->W: CDCL versus a replay baseline and the static bound.

Reproduces one column of the paper's Table I at example scale: the
amazon->webcam direction of the synthetic Office-31 benchmark (5 tasks
of 6 classes), comparing

* CDCL (cross-domain continual learning, the paper's method),
* DER (dark-experience replay; continual but UDA-blind),
* TVT (static joint training; the upper bound).

Run:  python examples/office31_comparison.py
"""

import numpy as np

from repro.baselines import BackboneConfig, BaselineConfig, DER, TVT
from repro.continual import Scenario, evaluate_task, run_continual_multi
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import office31


def main() -> None:
    stream = office31(
        "A", "W", samples_per_class=12, test_samples_per_class=8, rng=0
    )
    print(f"stream: {stream}\n")
    scenarios = [Scenario.TIL, Scenario.CIL]
    rows = []

    cdcl = CDCLTrainer(
        CDCLConfig(embed_dim=48, depth=2, epochs=8, warmup_epochs=3, memory_size=200),
        in_channels=3,
        image_size=16,
        rng=0,
    )
    cdcl_runs = run_continual_multi(cdcl, stream, scenarios)
    rows.append(("CDCL", {s: cdcl_runs[s].acc for s in scenarios}))

    der = DER(
        BaselineConfig(backbone=BackboneConfig(embed_dim=48, depth=2), epochs=8),
        in_channels=3,
        image_size=16,
        rng=0,
    )
    der_runs = run_continual_multi(der, stream, scenarios)
    rows.append(("DER", {s: der_runs[s].acc for s in scenarios}))

    tvt = TVT(
        BackboneConfig(embed_dim=48, depth=2),
        in_channels=3,
        image_size=16,
        epochs=15,
        warmup_epochs=4,
        rng=0,
    )
    tvt.fit(stream)
    tvt_acc = {
        s: float(np.mean([evaluate_task(tvt, t, s) for t in stream])) for s in scenarios
    }
    rows.append(("TVT (static)", tvt_acc))

    print(f"{'method':<14}{'TIL ACC':>10}{'CIL ACC':>10}")
    for name, accs in rows:
        print(
            f"{name:<14}{100 * accs[Scenario.TIL]:>9.2f}%{100 * accs[Scenario.CIL]:>9.2f}%"
        )
    print(
        "\nexpected shape: TVT >> CDCL > DER in TIL; "
        "CDCL and DER compressed together in CIL (paper Table I)."
    )


if __name__ == "__main__":
    main()
