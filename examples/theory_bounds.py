"""Measuring the paper's error bounds (Theorems 1-3) on a live model.

Trains CDCL on a short digit stream and, after every task, measures the
quantities the theory section reasons about:

* eps_S, eps_T — source/target error of the task;
* lambda_i — the proxy A-distance between the learned source and
  target feature distributions (the d_HdH estimate);
* KL(P_M || P_R) — how much the rehearsal memory's label distribution
  deviates from the raw task's (Theorem 3's replay-bias term);

then checks the Theorem 3 inequality on the measured values.

Run:  python examples/theory_bounds.py
"""

import numpy as np

from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import mnist_usps
from repro.theory import continual_bound, single_task_bound


def main() -> None:
    stream = mnist_usps(
        "mnist->usps", samples_per_class=15, test_samples_per_class=10, rng=0
    )
    stream.tasks = stream.tasks[:3]
    config = CDCLConfig(embed_dim=32, depth=1, epochs=6, warmup_epochs=2, memory_size=60)
    trainer = CDCLTrainer(config, in_channels=1, image_size=16, rng=0)

    per_task = []
    print("per-task measurements (Theorem 2 terms):")
    for task in stream:
        trainer.observe_task(task)
        xs, ys = task.source_train.arrays()
        xt, yt = task.target_test.arrays()
        eps_s = 1.0 - float((trainer.network.predict_til(xs, task.task_id) == ys).mean())
        eps_t = 1.0 - float((trainer.network.predict_til(xt, task.task_id) == yt).mean())
        feats_s = trainer.embed(xs, task.task_id)
        feats_t = trainer.embed(xt, task.task_id)
        terms = single_task_bound(feats_s, eps_s, feats_t, eps_t, task.task_id, rng=0)
        per_task.append(terms)
        print(
            f"  task {terms.task_id}: eps_S={terms.source_error:.3f}  "
            f"lambda={terms.divergence:.3f}  eps_T={terms.target_error:.3f}  "
            f"bound={terms.bound:.3f}  (slack {terms.slack:+.3f})"
        )

    # Theorem 3: add the memory-vs-raw KL terms for past tasks.
    k = stream.classes_per_task
    memory_dists, raw_dists = [], []
    for task in stream.tasks[:-1]:
        records = trainer.memory.records_for_task(task.task_id)
        local = [r.y_source - task.class_offset for r in records]
        memory_dists.append(np.bincount(local, minlength=k).astype(float) + 1e-6)
        raw_dists.append(
            np.bincount(task.source_train.arrays()[1], minlength=k).astype(float)
        )
    bound = continual_bound(per_task, memory_dists, raw_dists)
    print(f"\nKL(P_M || P_R) per past task: {[round(v, 4) for v in bound.kl_terms]}")
    print(
        f"Theorem 3: total eps_T = {bound.total_target_error:.3f}  <=  "
        f"sum(eps_S + lambda) + sum KL = {bound.bound:.3f}  ->  holds: {bound.holds}"
    )


if __name__ == "__main__":
    main()
