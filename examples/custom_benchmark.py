"""Bring your own benchmark: plug custom data into the CDCL pipeline.

The library's public surface is array-based, so any (images, labels)
source can form a cross-domain continual stream.  This example builds a
2-domain "sensor drift" benchmark from scratch — Gaussian class blobs
rendered as images, with the target domain shifted by a fixed affine
distortion — and runs CDCL on it.

Run:  python examples/custom_benchmark.py
"""

import numpy as np

from repro.continual import Scenario, TaskStream, UDATask, run_continual
from repro.core import CDCLConfig, CDCLTrainer
from repro.data import ArrayDataset


GOLDEN_ANGLE = 2.399963  # radians; spreads class centers around a circle


def render_class_blob(class_id: int, n: int, rng, shift: float = 0.0) -> np.ndarray:
    """Render class-coded blob images (1, 12, 12); ``shift`` is the
    domain distortion (brightness tilt).  Class identity is the blob's
    position on a circle, so all classes are well separated."""
    yy, xx = np.mgrid[0:12, 0:12] / 12.0
    angle = class_id * GOLDEN_ANGLE
    cy = 0.5 + 0.3 * np.sin(angle)
    cx = 0.5 + 0.3 * np.cos(angle)
    base = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / 0.02))
    images = base[None, None] + 0.15 * rng.normal(size=(n, 1, 12, 12))
    return np.clip(images + shift * (xx[None, None] - 0.5), 0.0, 1.5)


def make_task(task_id: int, classes: list[int], rng) -> UDATask:
    n = 16
    source_x, source_y, target_x, target_y = [], [], [], []
    for local, cls in enumerate(classes):
        source_x.append(render_class_blob(cls, n, rng, shift=0.0))
        source_y.extend([local] * n)
        target_x.append(render_class_blob(cls, n, rng, shift=0.6))
        target_y.extend([local] * n)
    return UDATask(
        task_id=task_id,
        classes=tuple(classes),
        source_train=ArrayDataset(np.concatenate(source_x), np.array(source_y)),
        target_train=ArrayDataset(np.concatenate(target_x), np.array(target_y)),
        target_test=ArrayDataset(
            np.concatenate(
                [render_class_blob(c, 8, rng, shift=0.6) for c in classes]
            ),
            np.repeat(np.arange(len(classes)), 8),
        ),
    )


def main() -> None:
    rng = np.random.default_rng(0)
    stream = TaskStream(
        name="sensor-drift",
        source_domain="lab",
        target_domain="field",
        tasks=[make_task(i, [2 * i, 2 * i + 1], rng) for i in range(3)],
    )
    stream.validate()
    print(f"custom stream: {stream}")

    config = CDCLConfig(embed_dim=32, depth=1, epochs=6, warmup_epochs=2, memory_size=60)
    trainer = CDCLTrainer(config, in_channels=1, image_size=12, rng=0)
    result = run_continual(trainer, stream, Scenario.TIL, verbose=True)
    print(f"\nTIL ACC {100 * result.acc:.2f}%  FGT {100 * result.fgt:.2f}%")


if __name__ == "__main__":
    main()
