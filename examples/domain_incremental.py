"""Domain-incremental learning (DIL): the paper's third scenario.

Section II-B defines DIL — the task never changes but the input
distribution does — and calls it the least-explored scenario; the paper
evaluates only TIL and CIL.  This example runs the extension this
library provides: a fixed 10-class label space whose *unlabeled target
domain rotates* through Office-Home's Clipart, Product and Real-World
domains while the labeled source stays Art.

Run:  python examples/domain_incremental.py
"""

from repro.continual import Scenario, run_continual
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import office_home_dil


def main() -> None:
    stream = office_home_dil(
        source="Ar",
        targets=("Cl", "Pr", "Re"),
        num_classes=5,
        samples_per_class=12,
        test_samples_per_class=8,
        rng=0,
    )
    print(f"stream: {stream}")
    print("label space is FIXED; each task brings a new target domain\n")

    config = CDCLConfig(embed_dim=48, depth=2, epochs=10, warmup_epochs=4, memory_size=120)
    trainer = CDCLTrainer(config, in_channels=3, image_size=16, rng=0)
    result = run_continual(trainer, stream, Scenario.DIL, verbose=True)

    print(f"\nDIL ACC {100 * result.acc:.2f}%  FGT {100 * result.fgt:.2f}%")
    print(
        "interpretation: each row of the R-matrix above scores ALL domains "
        "seen so far with the latest task parameters — how well the newest "
        "alignment transfers backwards to earlier target domains."
    )


if __name__ == "__main__":
    main()
