"""Quickstart: train CDCL on a cross-domain continual stream.

Builds the MNIST->USPS stand-in stream (5 tasks x 2 digit classes,
labeled source / unlabeled target per task), trains CDCL task by task,
and reports the paper's two metrics: average accuracy (ACC, Eq. 33) and
forgetting (FGT, Eq. 34) under both evaluation scenarios.

Run:  python examples/quickstart.py
"""

from repro.continual import Scenario, run_continual_multi
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import mnist_usps


def main() -> None:
    # A continual UDA stream: each task pairs labeled "mnist" digits
    # with unlabeled "usps" digits of the same two classes.
    stream = mnist_usps(
        "mnist->usps", samples_per_class=20, test_samples_per_class=10, rng=0
    )
    print(f"stream: {stream}")
    for task in stream:
        print(f"  {task}")

    # The small CDCL instance (the paper's digit configuration, scaled).
    config = CDCLConfig.small(epochs=14, warmup_epochs=5)
    trainer = CDCLTrainer(config, in_channels=1, image_size=16, rng=0)
    print(f"\nmodel parameters: {trainer.network.num_parameters():,}")

    # One pass over the stream, scored under both protocols.
    results = run_continual_multi(
        trainer, stream, [Scenario.TIL, Scenario.CIL], verbose=True
    )
    print("\n=== results ===")
    for scenario, result in results.items():
        print(
            f"{scenario.value.upper():>4}: ACC {100 * result.acc:.2f}%  "
            f"FGT {100 * result.fgt:.2f}%"
        )

    # Diagnostics the trainer collected along the way.
    last = trainer.logs[-1]
    print(
        f"\nlast task: pseudo-label accuracy {last.pseudo_label_accuracy[-1]:.2f}, "
        f"{last.memory_stored} records stored in rehearsal memory"
    )


if __name__ == "__main__":
    main()
