"""Ablation study: which CDCL component earns its keep?

Re-runs the paper's Table IV logic at example scale on MN->US: full
CDCL against dropping each loss block and against replacing the
inter- intra-task cross-attention with plain self-attention.

Run:  python examples/ablation_study.py
"""

from repro.continual import Scenario, run_continual_multi
from repro.core import CDCLConfig, CDCLTrainer
from repro.data.synthetic import mnist_usps

VARIANTS = {
    "full CDCL": {},
    "- L_CIL (A)": {"use_cil_loss": False},
    "- L_TIL (B)": {"use_til_loss": False},
    "- L_R  (C)": {"use_rehearsal_loss": False},
    "simple attention": {"use_cross_attention": False},
}


def main() -> None:
    stream = mnist_usps(
        "mnist->usps", samples_per_class=15, test_samples_per_class=10, rng=0
    )
    print(f"stream: {stream}\n")
    print(f"{'variant':<20}{'TIL ACC':>10}{'CIL ACC':>10}")
    for name, overrides in VARIANTS.items():
        config = CDCLConfig(
            embed_dim=32, depth=2, epochs=6, warmup_epochs=2, memory_size=100,
            **overrides,
        )
        trainer = CDCLTrainer(config, in_channels=1, image_size=16, rng=0)
        runs = run_continual_multi(trainer, stream, [Scenario.TIL, Scenario.CIL])
        print(
            f"{name:<20}"
            f"{100 * runs[Scenario.TIL].acc:>9.2f}%"
            f"{100 * runs[Scenario.CIL].acc:>9.2f}%"
        )
    print(
        "\nexpected shape (paper Table IV): full > ablations in TIL; "
        "dropping L_R hurts CIL the most; simple attention loses the "
        "cross-domain alignment."
    )


if __name__ == "__main__":
    main()
