"""Repo-level pytest configuration.

Applies the ``benchmark`` marker to everything under ``benchmarks/``
(they are full experiment reproductions, minutes each at the default
profile) and the ``smoke`` marker to everything under ``tests/``, so
the fast suite can be selected with ``-m "not benchmark"`` or
``-m smoke``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent


@pytest.fixture(scope="session", autouse=True)
def _isolated_engine_cache(tmp_path_factory):
    """Point the engine's result cache at a per-session temp directory.

    Tests and benchmarks must never read stale results from (or leak
    results into) the user-level ``~/.cache/repro-engine`` — a cached
    cell from an older code version would silently mask regressions in
    the qualitative benchmark assertions.

    The directory name embeds the engine's ``CACHE_VERSION``: even if a
    session cache outlives its run (reused basetemp via ``--basetemp``,
    or a future persistent test cache), cells written under an older
    entry format can never be served to tests of a newer one.
    """
    from repro.engine.cache import CACHE_VERSION

    previous = {
        name: os.environ.get(name) for name in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE")
    }
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp(f"engine-cache-v{CACHE_VERSION}")
    )
    # An exported REPRO_NO_CACHE would make the cache-behavior tests
    # spuriously fail; the suite always runs with caching available.
    os.environ.pop("REPRO_NO_CACHE", None)
    yield
    for name, value in previous.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


def pytest_collection_modifyitems(config, items):
    for item in items:
        try:
            relative = Path(str(item.fspath)).resolve().relative_to(_ROOT)
        except ValueError:
            continue
        top = relative.parts[0] if relative.parts else ""
        if top == "benchmarks":
            item.add_marker("benchmark")
        elif top == "tests":
            item.add_marker("smoke")
