#!/usr/bin/env python
"""End-to-end smoke of the cluster stack — CI's ``cluster-smoke`` step.

The full distributed loop, with *real* process isolation at every
seam (client, coordinator and workers each own a private cache
directory, so nothing can pass by accident over a shared filesystem):

1. a serial baseline: one :class:`repro.api.Session` runs a small
   multi-seed sweep locally into its own cache directory;
2. a coordinator subprocess starts via the real CLI
   (``repro-experiments cluster-coordinator``) with a fresh cache, and
   ``--workers`` (default 2) worker subprocesses join it
   (``repro-experiments cluster-worker``), each with a private cache —
   every result must travel back over the wire;
3. the same sweep runs through ``Session(executor="cluster://...")``
   in this process (its own third cache) and is checked
   **bitwise-equal** to the serial baseline, per seed and per
   protocol — distribution must be invisible to the science;
4. the caches are audited: the client's holds every cell (delivery
   persisted locally) and — separately — the *coordinator's* holds
   every cell too, which only its own wire-to-disk hand-off can
   explain; queue counters are checked for a clean run.

Exit codes: 0 ok, 1 an assertion failed, 2 infrastructure error.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Small enough to train in seconds, big enough to be a real sweep.
PROFILE_OVERRIDES = dict(
    samples_per_class=6, test_samples_per_class=8, epochs=2, warmup_epochs=1
)


def run_sweep(session, args):
    spec = session.spec(
        args.method, args.scenario, profile_overrides=dict(PROFILE_OVERRIDES)
    )
    return spec, session.sweep(spec, range(args.seeds))


def values(result):
    """The per-seed metric lists of a MultiSeedResult, protocol-keyed."""
    return {
        f"{metric}/{scenario.value}": list(stats.values)
        for metric, stats_by_scenario in (("acc", result.acc), ("fgt", result.fgt))
        for scenario, stats in stats_by_scenario.items()
    }


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn(command_args, cache_dir: Path) -> subprocess.Popen:
    """A repro-experiments subprocess with its own private cache."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *command_args], env=env
    )


def cells_on_disk(directory: Path, spec, seeds: int) -> list[int]:
    """Which seeds of ``spec`` have a cached result under ``directory``."""
    from dataclasses import replace

    return [
        seed
        for seed in range(seeds)
        if (directory / f"{replace(spec, seed=seed).cache_key()}.pkl").exists()
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--method", default="CDCL")
    parser.add_argument("--scenario", default="digits/mnist->usps")
    parser.add_argument(
        "--startup-timeout", type=float, default=60.0,
        help="how long to wait for the coordinator and workers to come up",
    )
    args = parser.parse_args()

    from repro.api import Session
    from repro.cluster import ClusterClient, format_address

    base = Path(tempfile.mkdtemp(prefix="cluster-smoke-"))
    print(f"scratch caches under {base}")

    print(f"1) serial baseline: {args.method} x {args.seeds} seeds ...")
    os.environ["REPRO_CACHE_DIR"] = str(base / "serial-cache")
    start = time.perf_counter()
    spec, serial = run_sweep(Session(profile="smoke"), args)
    print(f"   done in {time.perf_counter() - start:.1f}s")

    port = free_port()
    address = format_address("127.0.0.1", port)
    coordinator_cache = base / "coordinator-cache"
    print(f"2) coordinator subprocess at {address}; "
          f"{args.workers} worker subprocesses, all with private caches ...")
    procs = [
        spawn(
            ["cluster-coordinator", "--host", "127.0.0.1", "--port", str(port)],
            coordinator_cache,
        )
    ]
    client = ClusterClient(address, request_timeout=10.0)
    deadline = time.monotonic() + args.startup_timeout
    while True:
        try:
            client.ping()  # retries refused connects internally
            break
        except Exception:
            if time.monotonic() > deadline:
                procs[0].terminate()
                print("FAIL: coordinator never came up")
                return 2
            time.sleep(0.2)
    for index in range(args.workers):
        procs.append(
            spawn(
                [
                    "cluster-worker",
                    "--coordinator",
                    f"127.0.0.1:{port}",
                    "--name",
                    f"smoke-worker-{index}",
                    "--poll-interval",
                    "0.1",
                ],
                base / f"worker-{index}-cache",
            )
        )
    deadline = time.monotonic() + args.startup_timeout
    while len(client.stats()["workers"]) < args.workers:
        if time.monotonic() > deadline:
            for proc in procs:
                proc.terminate()
            print("FAIL: workers never registered")
            return 2
        time.sleep(0.2)

    # The *client* gets its own third cache: hits cannot mask the wire,
    # and anything in the coordinator's cache got there via its own
    # wire-to-disk hand-off, not via a store shared with this process.
    os.environ["REPRO_CACHE_DIR"] = str(base / "client-cache")
    print(f"3) the same sweep through Session(executor={address!r}) ...")
    start = time.perf_counter()
    _spec, clustered = run_sweep(Session(profile="smoke", executor=address), args)
    elapsed = time.perf_counter() - start
    stats = client.stats()
    client.shutdown()
    for proc in procs:
        proc.wait(timeout=30)
    print(
        f"   done in {elapsed:.1f}s; queue: {stats['tasks']}, "
        f"requeues={stats['requeues']}"
    )
    for worker in stats["workers"]:
        print(f"   {worker['name']}: {worker['completed']} cell(s)")

    print("4) bitwise equality serial vs cluster ...")
    ours, theirs = values(clustered), values(serial)
    if ours != theirs:
        print(f"FAIL: aggregates differ\n  cluster: {ours}\n  serial : {theirs}")
        return 1
    print(f"   ok: {len(ours)} metric series identical across {args.seeds} seeds")

    for label, directory in (
        ("client", base / "client-cache"),
        ("coordinator", coordinator_cache),
    ):
        have = cells_on_disk(directory, spec, args.seeds)
        if len(have) != args.seeds:
            print(
                f"FAIL: {label} cache holds cells for seeds {have}, "
                f"expected all of 0..{args.seeds - 1}"
            )
            return 1
    print("   ok: every wire-delivered cell landed in the client AND "
          "coordinator caches")

    executed = sum(worker["completed"] for worker in stats["workers"])
    if stats["tasks"].get("done") != args.seeds or executed != args.seeds:
        print(
            f"FAIL: queue accounting off (done={stats['tasks'].get('done')}, "
            f"worker executions={executed}, expected {args.seeds})"
        )
        return 1
    print("   ok: queue accounting clean (all cells done, all remote)")
    print("cluster smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
