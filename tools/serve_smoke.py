#!/usr/bin/env python
"""End-to-end smoke of the serving stack — CI's ``serve`` step.

The full loop, in one process:

1. a :class:`repro.api.Session` trains **and checkpoints** a smoke
   cell (CDCL on MNIST->USPS, tiny overrides);
2. :mod:`repro.serve` loads the checkpoint (no retraining) behind the
   TCP front-end and answers ``--requests`` (default 32) *concurrent*
   async predicts;
3. the responses are checked **bitwise-equal** against a direct
   ``predict_multi`` call on the same samples — micro-batching must be
   invisible to the math;
4. a throughput benchmark compares the batched shared-forward path
   against the per-sample prediction loop and fails unless batching is
   at least ``--min-speedup`` (default 2x) faster.

Exit codes: 0 ok, 1 equality/speedup assertion failed.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

#: Small enough to train in seconds, big enough for a 32-sample batch.
PROFILE_OVERRIDES = dict(
    samples_per_class=6, test_samples_per_class=16, epochs=2, warmup_epochs=1
)


def benchmark_forward_paths(method, images, task_id, repeats: int = 3):
    """Best-of-N wall-clock: one batched forward vs the per-sample loop."""
    from repro.continual import Scenario

    scenarios = [Scenario.TIL]
    batched = per_sample = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        method.predict_multi(images, task_id, scenarios)
        batched = min(batched, time.perf_counter() - start)
        start = time.perf_counter()
        for image in images:
            method.predict_multi(image[None], task_id, scenarios)
        per_sample = min(per_sample, time.perf_counter() - start)
    return batched, per_sample


async def run(args) -> int:
    from repro.api import Session
    from repro.continual import Scenario
    from repro.serve import InferenceService, ServeApp, request_async

    session = Session(profile="smoke")
    print("1) training + checkpointing the smoke cell through the Session...")
    handle = (
        session.run("CDCL")
        .on("digits/mnist->usps")
        .profile("smoke", **PROFILE_OVERRIDES)
        .checkpoint()
        .start()
    )
    spec = handle.specs[0]
    cell = handle.results[0]
    print(
        f"   cell done in {cell.elapsed:.1f}s (cached={cell.cached}); "
        f"checkpoint on disk: {session.has_checkpoint(spec)}"
    )

    from repro.engine.registry import SCENARIOS

    stream = SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)
    images, _labels = stream[0].target_test.arrays()
    requests = min(args.requests, len(images))
    samples = images[:requests]
    if requests < args.requests:
        print(f"   (scenario offers {requests} test samples; using all of them)")

    print(f"2) serving the checkpoint; {requests} concurrent TCP predicts...")
    service = InferenceService(
        session, max_batch=args.max_batch, max_delay_ms=args.max_delay_ms
    )
    app = ServeApp(service, spec)
    host, port = await app.start("127.0.0.1", 0)
    start = time.perf_counter()
    responses = await asyncio.gather(
        *(
            request_async(
                host, port, {"op": "predict", "images": image.tolist(), "task_id": 0}
            )
            for image in samples
        )
    )
    serve_elapsed = time.perf_counter() - start
    failed = [r for r in responses if not r.get("ok")]
    if failed:
        print(f"FAIL: server error: {failed[0].get('error')}")
        return 1
    served = np.array([r["predictions"][0] for r in responses])
    stats = service.stats()
    print(
        f"   {requests} predicts in {serve_elapsed * 1000:.0f} ms "
        f"({requests / serve_elapsed:.0f} samples/s) across "
        f"{stats['batches']} batches (mean {stats['mean_batch']:.1f}, "
        f"largest {stats['largest_batch']})"
    )
    await app.close()

    print("3) bitwise equality vs a direct predict_multi call...")
    method = session.load_model(spec)
    direct = method.predict_multi(samples, 0, [Scenario.TIL])[Scenario.TIL]
    if not np.array_equal(served, direct):
        mismatches = int((served != direct).sum())
        print(f"FAIL: {mismatches}/{requests} served predictions differ")
        return 1
    print(f"   ok: all {requests} served predictions identical")

    print("4) throughput: batched shared-forward vs per-sample loop...")
    batched, per_sample = benchmark_forward_paths(method, samples, 0)
    speedup = per_sample / batched
    print(
        f"   batched {requests} samples: {batched * 1000:.1f} ms "
        f"({requests / batched:.0f}/s); per-sample loop: "
        f"{per_sample * 1000:.1f} ms ({requests / per_sample:.0f}/s) "
        f"-> {speedup:.1f}x"
    )
    if speedup < args.min_speedup:
        print(f"FAIL: micro-batched speedup {speedup:.2f}x < {args.min_speedup}x")
        return 1
    print("serve smoke: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=32, metavar="N")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-delay-ms", type=float, default=5.0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail when batched throughput is below this multiple of the loop",
    )
    args = parser.parse_args(argv)
    return asyncio.run(run(args))


if __name__ == "__main__":
    sys.exit(main())
