#!/usr/bin/env python
"""Measure the telemetry layer's overhead and gate it — CI's bench job.

The ISSUE 10 budget: with telemetry *enabled* (``REPRO_TRACE=1`` —
sampled root spans, span-buffer writes, phase provenance), the training
workload must run within ``--tolerance`` (default 2%) of the same
workload with tracing fully off (``REPRO_TRACE=0`` — the histogram
instrumentation stays, only the per-span dict work is gated, which is
exactly what a production process pays by default).

Method: one untimed warmup cell (imports, BLAS threads, im2col
workspaces), then ``--repeats`` interleaved off/on pairs of the same
cell with the cache disabled (every run really trains).  Interleaving
cancels slow drift (thermal, page cache); the gate compares medians so
one noisy repeat cannot fail the job.

Exit codes: 0 ok, 2 overhead above tolerance.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Big enough that one timing sample is seconds-scale (timer noise on
#: a CI runner is milliseconds), small enough for interleaved repeats.
PROFILE_OVERRIDES = dict(
    samples_per_class=12, test_samples_per_class=24, epochs=3, warmup_epochs=1
)
CELLS_PER_SAMPLE = 2


def run_cells(base_seed: int) -> float:
    """One timing sample: train CELLS_PER_SAMPLE full cells."""
    from repro.engine.runner import run_one, spec_for

    specs = [
        spec_for(
            "FineTune",
            "digits/mnist->usps",
            "smoke",
            seed=base_seed + index,
            profile_overrides=PROFILE_OVERRIDES,
        )
        for index in range(CELLS_PER_SAMPLE)
    ]
    start = time.perf_counter()
    for spec in specs:
        run_one(spec, use_cache=False)
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5, metavar="N",
                        help="off/on pairs to time (median wins)")
    parser.add_argument(
        "--tolerance", type=float, default=0.02, metavar="FRACTION",
        help="fail when the telemetry-on median exceeds off by this fraction",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    os.environ.setdefault("REPRO_PROFILE", "smoke")
    # Identical settings either side of the A/B except REPRO_TRACE:
    # no cache (every run trains) and no store (isolate the span /
    # sampling cost from sqlite write-through, which both modes share).
    os.environ["REPRO_NO_CACHE"] = "1"
    os.environ["REPRO_NO_STORE"] = "1"

    from repro import telemetry

    os.environ["REPRO_TRACE"] = "0"
    warmup = run_cells(base_seed=0)
    print(f"warmup: {warmup:.2f}s")

    off: list[float] = []
    on: list[float] = []
    for repeat in range(args.repeats):
        # Alternate which mode goes first so any within-pair drift
        # (allocator state, page cache) cancels across repeats.
        modes = ("0", "1") if repeat % 2 == 0 else ("1", "0")
        for mode in modes:
            os.environ["REPRO_TRACE"] = mode
            (off if mode == "0" else on).append(
                run_cells(base_seed=repeat * CELLS_PER_SAMPLE)
            )
        print(
            f"repeat {repeat}: off {off[-1]:.3f}s on {on[-1]:.3f}s "
            f"({on[-1] / off[-1] - 1.0:+.1%})"
        )

    # Gate on the minimum of each mode: wall-clock noise on a shared
    # runner is strictly additive (scheduler preemption, page faults),
    # so min() estimates the interference-free cost of each mode and
    # their ratio isolates what telemetry itself adds.  Medians are
    # printed for context but carry the runner's load, not the code's.
    overhead = min(on) / min(off) - 1.0
    spans = len(telemetry.recent_spans())
    print(
        f"min: off {min(off):.3f}s, on {min(on):.3f}s -> "
        f"overhead {overhead:+.2%} (budget +{args.tolerance:.0%}); "
        f"median off {statistics.median(off):.3f}s / "
        f"on {statistics.median(on):.3f}s; {spans} sampled spans recorded"
    )
    if spans == 0:
        print("FAIL: telemetry-on runs recorded no spans — the A/B measured nothing")
        return 2
    if overhead > args.tolerance:
        print(
            f"TELEMETRY OVERHEAD REGRESSION: {overhead:+.2%} exceeds the "
            f"+{args.tolerance:.0%} budget"
        )
        return 2
    print("telemetry overhead: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
