#!/usr/bin/env python
"""Fold accumulated ``BENCH_*.json`` artifacts into a trend table.

CI's ``bench`` job emits one ``BENCH_<sha>.json`` per commit
(``tools/bench_report.py``); downloading a stack of those artifacts
and pointing this tool at the directory renders the performance
trajectory across SHAs — total wall-clock, cache hit rate, and the
per-commit delta — as a markdown table (default) or CSV.

Reports carry no timestamp, so ordering follows file modification time
(artifact download order) unless ``--order name`` is given; the
committed baseline (``sha == "baseline"``), when present in the scanned
set, is always listed first as the reference row.

Usage::

    python tools/bench_trend.py reports/            # markdown to stdout
    python tools/bench_trend.py reports/ --csv -o trend.csv
    python tools/bench_trend.py --cell "benchmarks/test_table1.py::..." reports/
    python tools/bench_trend.py --store ~/.cache/repro-engine

``--store`` renders the trend from a cache directory's run-store index
(``runs.sqlite``) instead of BENCH artifacts: one row per recorded git
SHA, aggregated over every cell the fleet executed (equivalent to
``python -m repro.experiments runs report trend``).

Exit codes: 0 ok, 2 no reports found.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from pathlib import Path

__all__ = ["load_reports", "trend_rows", "render_markdown", "render_csv", "main"]


def load_reports(directory: Path, order: str = "mtime") -> list[dict]:
    """Read every ``BENCH_*.json`` under ``directory``, oldest first."""
    paths = sorted(
        directory.glob("BENCH_*.json"),
        key=(lambda p: p.stat().st_mtime) if order == "mtime" else (lambda p: p.name),
    )
    reports = []
    for path in paths:
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            print(f"skipping unreadable {path.name}: {error}", file=sys.stderr)
            continue
        report["_file"] = path.name
        reports.append(report)
    # The committed baseline describes the reference workload, not a
    # commit: surface it first so every delta reads against history.
    reports.sort(key=lambda r: 0 if r.get("sha") == "baseline" else 1)
    return reports


def trend_rows(reports: list[dict], cell: str | None = None) -> list[dict]:
    """One row per report: totals, hit rate, delta vs previous report."""
    rows = []
    previous_total = None
    for report in reports:
        cells = report.get("cells", {})
        if cell is not None:
            total = cells.get(cell)
            if total is None:
                continue  # this commit did not run the requested cell
        else:
            total = report.get("total_seconds")
        hit_rate = (report.get("cache") or {}).get("hit_rate")
        delta = (
            (total / previous_total - 1.0)
            if (previous_total and total is not None)
            else None
        )
        rows.append(
            {
                "sha": report.get("sha", "?"),
                "python": report.get("python", "?"),
                "profile": report.get("profile", "?"),
                # Pre-policy reports carry no dtype; they ran at float64.
                "dtype": report.get("dtype", "float64"),
                "cells": len(cells),
                "failed": len(report.get("failed", [])),
                "seconds": total,
                "delta": delta,
                "hit_rate": hit_rate,
                # Pre-ensemble-axis reports carry no seed_batch field.
                "seed_batch": report.get("seed_batch_speedup"),
                # Pre-wire-v2 reports carry neither wire field.
                "wire_bytes": report.get("wire_bytes_ratio"),
                "wire_predict": report.get("wire_predict_speedup"),
                "file": report.get("_file", ""),
            }
        )
        if total is not None:
            previous_total = total
    return rows


_COLUMNS = (
    "sha",
    "python",
    "profile",
    "dtype",
    "cells",
    "failed",
    "seconds",
    "delta",
    "hit_rate",
    "seed_batch",
    "wire_bytes",
    "wire_predict",
)


def _format(row: dict, column: str) -> str:
    value = row[column]
    if value is None:
        return "-"
    if column == "seconds":
        return f"{value:.1f}"
    if column == "delta":
        return f"{value:+.1%}"
    if column == "hit_rate":
        return f"{value:.0%}"
    if column in ("seed_batch", "wire_bytes", "wire_predict"):
        return f"{value:.1f}x"
    return str(value)


def render_markdown(rows: list[dict], title: str) -> str:
    lines = [f"### Bench trend — {title}", ""]
    lines.append("| " + " | ".join(_COLUMNS) + " |")
    lines.append("|" + "|".join("---" for _ in _COLUMNS) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format(row, c) for c in _COLUMNS) + " |")
    return "\n".join(lines)


def render_csv(rows: list[dict]) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(_COLUMNS) + ["file"])
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row[key] for key in list(_COLUMNS) + ["file"]})
    return buffer.getvalue()


def _store_trend(cache_dir: Path, output: Path | None) -> int:
    """Render the per-SHA trend recorded in ``<cache_dir>/runs.sqlite``."""
    # src/ layout: make `repro` importable when run as a plain script.
    src = Path(__file__).resolve().parents[1] / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.store import RunStore
    from repro.store.report import render_trend, trend_from_store

    store = RunStore(cache_dir)
    rows = trend_from_store(store)
    if not rows:
        print(f"no recorded runs in {store.path}", file=sys.stderr)
        return 2
    text = render_trend(rows) + "\n"
    if output is not None:
        output.write_text(text)
        print(f"wrote {output} ({len(rows)} rows)")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "directory",
        type=Path,
        nargs="?",
        default=Path("."),
        help="directory holding BENCH_*.json artifacts (default: CWD)",
    )
    parser.add_argument(
        "--cell",
        default=None,
        metavar="NODEID",
        help="trend one benchmark cell instead of the suite total",
    )
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of markdown")
    parser.add_argument(
        "--order",
        choices=("mtime", "name"),
        default="mtime",
        help="report ordering when several artifacts are scanned",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None, help="write here instead of stdout"
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="CACHE_DIR",
        help="render the trend from this cache directory's runs.sqlite "
        "index instead of BENCH_*.json artifacts",
    )
    args = parser.parse_args(argv)

    if args.store is not None:
        return _store_trend(args.store, args.output)

    reports = load_reports(args.directory, order=args.order)
    if not reports:
        print(f"no BENCH_*.json reports under {args.directory}", file=sys.stderr)
        return 2
    rows = trend_rows(reports, cell=args.cell)
    if not rows:
        print(f"no report contains cell {args.cell!r}", file=sys.stderr)
        return 2
    title = args.cell if args.cell else "suite total"
    text = render_csv(rows) if args.csv else render_markdown(rows, title) + "\n"
    if args.output is not None:
        args.output.write_text(text)
        print(f"wrote {args.output} ({len(rows)} rows)")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
