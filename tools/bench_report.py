#!/usr/bin/env python
"""Run the ``benchmark``-marked suite and emit a machine-readable report.

CI's ``bench`` job calls this to track the performance trajectory of
the experiment engine: the report records wall-clock seconds per
benchmark cell (one pytest node each), the suite total, and the
engine-cache traffic of the run (hit rate included).  Reports are named
``BENCH_<sha>.json`` and uploaded as workflow artifacts, so the
trajectory survives across commits.

Against a committed baseline (``benchmarks/BENCH_BASELINE.json``), the
run fails when total wall-clock regresses by more than
``--max-regression`` (default 25%) — the guard the ROADMAP's "fast as
the hardware allows" goal hangs off.  Refresh the baseline with
``--update-baseline`` after an intentional workload change (new
benchmarks, profile growth) and commit the result.

Usage::

    python tools/bench_report.py --output BENCH_$(git rev-parse --short HEAD).json
    python tools/bench_report.py --baseline benchmarks/BENCH_BASELINE.json
    python tools/bench_report.py --update-baseline

Exit codes: 0 ok, 1 benchmark failures, 2 performance regression.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_BASELINE.json"


class _CellRecorder:
    """Pytest plugin: wall-clock seconds per benchmark node."""

    def __init__(self) -> None:
        self.cells: dict[str, float] = {}
        self.failed: list[str] = []

    def pytest_runtest_logreport(self, report) -> None:
        if report.when == "call":
            self.cells[report.nodeid] = round(report.duration, 4)
        # A node can fail in several phases (call + teardown); list it once.
        if report.failed and report.nodeid not in self.failed:
            self.failed.append(report.nodeid)


def run_suite() -> tuple[int, dict]:
    """Run the benchmark suite in-process; return (exit_code, report)."""
    import pytest

    sys.path.insert(0, str(REPO / "src"))
    # Benches always run at the smoke profile in CI; an exported profile
    # still wins for local experimentation.
    os.environ.setdefault("REPRO_PROFILE", "smoke")

    from repro.autograd import get_default_dtype
    from repro.engine import cache

    cache.reset_session_counters()
    recorder = _CellRecorder()
    # The seed-batch bench (benchmarks/test_seed_batch.py) measures its
    # ratio with per-leg timers, not node wall-clock; it hands the
    # number over through a JSON side-channel so the report can carry
    # ``seed_batch_speedup`` for the trend table and its gate.
    sidecar = Path(tempfile.mkstemp(suffix=".json", prefix="seed_batch_")[1])
    os.environ["REPRO_SEED_BATCH_REPORT"] = str(sidecar)
    # Same side-channel idea for the wire bench (benchmarks/test_wire.py):
    # bytes-on-wire ratio and predict codec speedup of the v2 binary
    # framing, carried as ``wire_bytes_ratio`` / ``wire_predict_speedup``.
    wire_sidecar = Path(tempfile.mkstemp(suffix=".json", prefix="wire_")[1])
    os.environ["REPRO_WIRE_REPORT"] = str(wire_sidecar)
    start = time.perf_counter()
    try:
        code = pytest.main(
            ["-q", "-m", "benchmark", str(REPO / "benchmarks")], plugins=[recorder]
        )
        total = time.perf_counter() - start
        seed_batch = None
        if sidecar.stat().st_size:
            seed_batch = json.loads(sidecar.read_text())
        wire = None
        if wire_sidecar.stat().st_size:
            wire = json.loads(wire_sidecar.read_text())
    finally:
        sidecar.unlink(missing_ok=True)
        wire_sidecar.unlink(missing_ok=True)
    counters = cache.session_counters()
    loads = counters["hits"] + counters["misses"]
    report = {
        "sha": _git_sha(),
        "python": sys.version.split()[0],
        "profile": os.environ.get("REPRO_PROFILE", "smoke"),
        # Compute precision of the run (the policy already honors an
        # exported REPRO_DTYPE at import).  Tagging it keeps BENCH_*.json
        # trajectories comparable across the float32 transition.
        "dtype": get_default_dtype().name,
        "cells": recorder.cells,
        "failed": recorder.failed,
        "total_seconds": round(total, 3),
        # Measured ratio of the 5-seed serial sweep over the
        # seed-batched tensor program (None when the bench was
        # deselected or failed before reporting).
        "seed_batch_speedup": seed_batch["speedup"] if seed_batch else None,
        "seed_batch": seed_batch,
        # Measured v1/v2 bytes-on-wire ratio of a checkpoint push and
        # the predict-batch codec speedup (None when the wire bench was
        # deselected or failed before reporting).
        "wire_bytes_ratio": wire["bytes_ratio"] if wire else None,
        "wire_predict_speedup": wire["predict_speedup"] if wire else None,
        "wire": wire,
        "cache": {
            **counters,
            "hit_rate": round(counters["hits"] / loads, 4) if loads else None,
        },
    }
    return int(code), report


def compare(report: dict, baseline: dict, max_regression: float) -> bool:
    """Print the delta vs baseline; True when within tolerance."""
    base_total = baseline.get("total_seconds")
    total = report["total_seconds"]
    if not base_total:
        print("baseline has no total_seconds; skipping regression check")
        return True
    ratio = total / base_total
    print(
        f"total wall-clock: {total:.1f}s vs baseline {base_total:.1f}s "
        f"({ratio - 1.0:+.1%}, tolerance +{max_regression:.0%})"
    )
    base_cells = baseline.get("cells", {})
    for nodeid, seconds in sorted(
        report["cells"].items(), key=lambda kv: -kv[1]
    ):
        base = base_cells.get(nodeid)
        delta = f"{seconds / base - 1.0:+.1%}" if base else "new"
        print(f"  {seconds:7.2f}s  {delta:>8}  {nodeid}")
    for nodeid in sorted(set(base_cells) - set(report["cells"])):
        print(f"  removed: {nodeid}")
    return ratio <= 1.0 + max_regression


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return os.environ.get("GITHUB_SHA", "unknown")[:12] or "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="where to write the report (default BENCH_<sha>.json in CWD)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE if BASELINE.exists() else None,
        metavar="FILE",
        help="baseline report to compare against (default: the committed one)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="fail when total wall-clock exceeds baseline by this fraction",
    )
    parser.add_argument(
        "--min-seed-batch-speedup",
        type=float,
        default=2.0,
        metavar="RATIO",
        help="fail when the measured seed_batch_speedup drops below this",
    )
    parser.add_argument(
        "--min-wire-bytes-ratio",
        type=float,
        default=2.0,
        metavar="RATIO",
        help="fail when the measured wire_bytes_ratio drops below this",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write the report to {BASELINE.relative_to(REPO)} instead of comparing",
    )
    args = parser.parse_args(argv)

    code, report = run_suite()
    output = args.output or Path(f"BENCH_{report['sha']}.json")
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} ({len(report['cells'])} cells, {report['total_seconds']}s)")
    if code != 0:
        print(f"benchmark suite failed (pytest exit {code}): {report['failed']}")
        return 1

    speedup = report.get("seed_batch_speedup")
    if speedup is not None:
        print(f"seed_batch_speedup: {speedup:.2f}x (gate {args.min_seed_batch_speedup:.1f}x)")
        if speedup < args.min_seed_batch_speedup:
            print(
                f"PERFORMANCE REGRESSION: seed-batched training returned "
                f"{speedup:.2f}x over serial, below the "
                f"{args.min_seed_batch_speedup:.1f}x floor"
            )
            return 2

    bytes_ratio = report.get("wire_bytes_ratio")
    if bytes_ratio is not None:
        print(f"wire_bytes_ratio: {bytes_ratio:.2f}x (gate {args.min_wire_bytes_ratio:.1f}x)")
        if bytes_ratio < args.min_wire_bytes_ratio:
            print(
                f"PERFORMANCE REGRESSION: binary checkpoint push is only "
                f"{bytes_ratio:.2f}x smaller than the JSON line, below the "
                f"{args.min_wire_bytes_ratio:.1f}x floor"
            )
            return 2

    if args.update_baseline:
        # The committed baseline carries no sha: it describes the
        # workload, not one commit, so refreshing it is a 1-line diff.
        baseline = dict(report)
        baseline["sha"] = "baseline"
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"updated {BASELINE}")
        return 0

    if args.baseline is None:
        print("no baseline to compare against (pass --baseline or commit one)")
        return 0
    baseline = json.loads(args.baseline.read_text())
    if not compare(report, baseline, args.max_regression):
        print(
            f"PERFORMANCE REGRESSION: total exceeds baseline by more than "
            f"{args.max_regression:.0%}",
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
