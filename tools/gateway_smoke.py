#!/usr/bin/env python
"""End-to-end smoke of the serving gateway — CI's ``gateway-smoke`` step.

The full elastic-serving loop, with real process isolation at every
seam (the gateway subprocess owns the trained cache; every replica
subprocess gets a private, initially *empty* cache, so any served
prediction proves the wire checkpoint transport):

1. a :class:`repro.api.Session` trains **and checkpoints** a multi-model
   workload (``--models`` seeds, default 4) into the gateway's cache;
2. a gateway subprocess starts via the real CLI
   (``repro-experiments gateway run``) with an autoscaler bounded at
   ``1..--max-replicas`` and pressure scaling parked out of the way —
   the smoke drives fleet size explicitly through the ``scale`` op;
3. every model predicts through the gateway and is checked
   **bitwise-equal** against a direct ``predict_multi`` on the same
   checkpoint; replica caches are audited to hold zero trained ``.pkl``
   entries (checkpoints arrived over the wire, nothing retrained);
4. a concurrent mixed-model workload is timed at 1 replica, the fleet
   scales to ``--max-replicas``, and the same workload must run at
   least ``--min-speedup`` (default 2x) faster;
5. one replica is SIGKILLed **mid-workload**: every client request must
   still succeed (instant dead-socket detection + reassignment + client
   retries), and the autoscaler must respawn the fleet back to target.

Exit codes: 0 ok, 1 an assertion failed, 2 infrastructure error.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Small enough to train in seconds, big enough to be a real workload.
PROFILE_OVERRIDES = dict(
    samples_per_class=6, test_samples_per_class=16, epochs=2, warmup_epochs=1
)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn(command_args, cache_dir: Path) -> subprocess.Popen:
    """A repro-experiments subprocess with its own private cache."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *command_args], env=env
    )


async def raw_predict(host, port, line: bytes, *, attempts=10, base_delay=0.02):
    """One pre-framed predict with client-side busy/teardown retries.

    Pre-serializing the request lines keeps ``json.dumps`` of the image
    batches out of the timed sections — the throughput comparison must
    measure the fleet, not this process's encoder.
    """
    from repro import netio

    delays = netio.backoff_delays(attempts, base=base_delay)
    for attempt in range(attempts):
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=netio.STREAM_LIMIT
            )
            try:
                writer.write(line)
                await writer.drain()
                raw = await reader.readline()
            finally:
                writer.close()
            if raw:
                answer = json.loads(raw)
                if answer.get("ok") or answer.get("error") != "busy":
                    return answer
        except OSError:
            pass
        try:
            await asyncio.sleep(next(delays))
        except StopIteration:
            break
    return {"ok": False, "error": f"no answer after {attempts} attempts"}


async def fire_workload(host, port, lines, count):
    """``count`` concurrent predicts round-robined across ``lines``."""
    results = await asyncio.gather(
        *(raw_predict(host, port, lines[i % len(lines)]) for i in range(count))
    )
    failed = [r for r in results if not r.get("ok")]
    return results, failed


async def wait_for(client, predicate, what, timeout=90.0):
    deadline = time.monotonic() + timeout
    while True:
        try:
            stats = await client.stats_async()
            if predicate(stats):
                return stats
        except (OSError, RuntimeError):
            stats = None
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        await asyncio.sleep(0.25)


async def run(args) -> int:
    from repro.api import Session
    from repro.gateway import GatewayClient

    base = Path(tempfile.mkdtemp(prefix="gateway-smoke-"))
    gateway_cache = base / "gateway-cache"
    replica_root = base / "replica-caches"
    print(f"scratch caches under {base}")

    os.environ["REPRO_CACHE_DIR"] = str(gateway_cache)
    session = Session(profile="smoke")

    print(f"1) training + checkpointing {args.models} models ...")
    start = time.perf_counter()
    specs = []
    for seed in range(args.models):
        handle = (
            session.run(args.method)
            .on(args.scenario)
            .profile("smoke", **PROFILE_OVERRIDES)
            .seed(seed)
            .checkpoint()
            .start()
        )
        specs.append(handle.specs[0])
        handle.release()
    print(f"   done in {time.perf_counter() - start:.1f}s")

    port = free_port()
    print(f"2) gateway subprocess at 127.0.0.1:{port} "
          f"(1..{args.max_replicas} replicas, private empty caches) ...")
    gateway_proc = spawn(
        [
            "gateway", "run",
            "--host", "127.0.0.1",
            "--port", str(port),
            "--min-replicas", "1",
            "--max-replicas", str(args.max_replicas),
            # Park pressure scaling: the smoke drives fleet size via the
            # scale op so the throughput comparison is deterministic.
            "--scale-up-after", "100000",
            "--scale-down-after", "100000",
            # Deep per-replica admission: the timed workloads measure
            # queueing + compute, not busy-shed/backoff churn.
            "--replica-max-inflight", "64",
            "--replica-cache-root", str(replica_root),
        ],
        gateway_cache,
    )
    client = GatewayClient(f"127.0.0.1:{port}", session, attempts=10)
    try:
        return await check(args, session, specs, client, gateway_proc, replica_root)
    finally:
        gateway_proc.send_signal(signal.SIGINT)  # CLI path: close fleet, exit
        try:
            gateway_proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            gateway_proc.kill()


async def check(args, session, specs, client, gateway_proc, replica_root) -> int:
    from repro.continual import Scenario

    stats = await wait_for(
        client, lambda s: s["alive"] >= 1, "the first replica to join"
    )
    print(f"   up: {stats['alive']} replica(s) after "
          f"{stats['autoscaler']['spawned_total']} spawn(s)")

    print("3) bitwise equality through the gateway (cold replica caches) ...")
    lines = []
    for spec in specs:
        stream_images = sample_images(spec)
        direct = session.load_model(spec).predict_multi(
            stream_images, 0, [Scenario.TIL]
        )[Scenario.TIL]
        served = await client.predict_async(spec, stream_images, task_id=0)
        if not np.array_equal(served, direct):
            print(f"FAIL: seed {spec.seed}: "
                  f"{int((served != direct).sum())} predictions differ")
            return 1
        # Timed requests carry a slice: the throughput sections measure
        # routing + fleet compute, not megabytes of JSON per request.
        lines.append(
            json.dumps(
                {
                    "op": "predict",
                    "model": client._wire_spec(spec),
                    "images": stream_images[: args.batch].tolist(),
                    "task_id": 0,
                    "scenario": "til",
                }
            ).encode()
            + b"\n"
        )
    stats = await client.stats_async()
    pushes = stats["traffic"]["checkpoint_pushes"]
    if pushes < args.models:
        print(f"FAIL: only {pushes} checkpoint pushes for {args.models} models")
        return 1
    trained_locally = list(replica_root.rglob("*.pkl"))
    if trained_locally:
        print(f"FAIL: replica caches hold trained entries: {trained_locally}")
        return 1
    print(f"   ok: {args.models} models identical; {pushes} checkpoint "
          f"push(es); replica caches hold no trained entries")

    print(f"4) throughput: {args.requests} mixed-model predicts, "
          f"1 replica vs {args.max_replicas} ...")
    _, failed = await fire_workload(client.host, client.port, lines, args.requests)
    if failed:
        print(f"FAIL: warmup error: {failed[0].get('error')}")
        return 1
    start = time.perf_counter()
    _, failed = await fire_workload(client.host, client.port, lines, args.requests)
    single = time.perf_counter() - start
    if failed:
        print(f"FAIL: single-replica workload error: {failed[0].get('error')}")
        return 1
    print(f"   1 replica: {args.requests} predicts in {single * 1000:.0f} ms "
          f"({args.requests / single:.0f}/s)")

    await client.scale_async(args.max_replicas)
    await wait_for(
        client,
        lambda s: s["alive"] >= args.max_replicas,
        f"the fleet to reach {args.max_replicas} replicas",
    )
    # Warm the newcomers (checkpoint pushes land outside the timing).
    _, failed = await fire_workload(client.host, client.port, lines, args.requests)
    if failed:
        print(f"FAIL: scale-out warmup error: {failed[0].get('error')}")
        return 1
    start = time.perf_counter()
    _, failed = await fire_workload(client.host, client.port, lines, args.requests)
    fleet = time.perf_counter() - start
    if failed:
        print(f"FAIL: fleet workload error: {failed[0].get('error')}")
        return 1
    speedup = single / fleet
    print(f"   {args.max_replicas} replicas: {args.requests} predicts in "
          f"{fleet * 1000:.0f} ms ({args.requests / fleet:.0f}/s) "
          f"-> {speedup:.2f}x")
    # The fleet scales by process: with fewer cores than replicas (plus
    # one for gateway+client) the speedup physically cannot appear, so
    # the bar drops to "scaling out must not collapse throughput".
    cpus = os.cpu_count() or 1
    required = args.min_speedup
    if cpus < args.max_replicas + 1:
        required = 0.8 if cpus <= 2 else 1.3
        print(f"   note: {cpus} CPU(s) for a {args.max_replicas}-replica "
              f"fleet; relaxing the speedup bar to {required}x")
    if speedup < required:
        print(f"FAIL: fleet speedup {speedup:.2f}x < {required}x")
        return 1

    print("5) SIGKILL one replica mid-workload; zero client failures ...")
    stats = await client.stats_async()
    victims = [
        r for r in stats["replicas"]
        if r["state"] == "alive" and r["spawned"] and r["pid"]
    ]
    if not victims:
        print("FAIL: no spawned replica with a pid to kill")
        return 1
    victim = victims[0]
    loop = asyncio.get_running_loop()
    loop.call_later(0.05, os.kill, victim["pid"], signal.SIGKILL)
    results, failed = await fire_workload(
        client.host, client.port, lines, args.requests
    )
    if failed:
        print(f"FAIL: {len(failed)}/{len(results)} requests failed across "
              f"the kill: {failed[0].get('error')}")
        return 1
    print(f"   ok: all {len(results)} requests answered across the kill "
          f"of {victim['replica_id']} (pid {victim['pid']})")

    stats = await wait_for(
        client,
        lambda s: s["alive"] >= args.max_replicas,
        "the autoscaler to respawn the killed replica",
    )
    print(f"   ok: fleet healed to {stats['alive']} replicas "
          f"(dead={stats['dead']}, "
          f"spawned_total={stats['autoscaler']['spawned_total']})")

    print("6) telemetry snapshot over the wire (the CLI operators use) ...")
    # The same `repro-experiments telemetry snapshot --address` an
    # operator would run against the live gateway: the stats op must
    # carry the process-wide metrics registry, and it must show the
    # traffic this smoke just generated.
    probe = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments",
            "telemetry", "snapshot",
            "--address", f"{client.host}:{client.port}",
            "--json",
        ],
        env=dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
        ),
        capture_output=True,
        text=True,
        timeout=30,
    )
    if probe.returncode != 0:
        print(f"FAIL: telemetry snapshot exited {probe.returncode}: {probe.stderr}")
        return 1
    snapshot = json.loads(probe.stdout)
    telemetry_block = snapshot["stats"]["transport"].get("telemetry") or {}
    histograms = {
        name: h
        for name, h in (telemetry_block.get("histograms") or {}).items()
        if h.get("count")
    }
    dispatch = [name for name in histograms if name.startswith("span.server.")]
    if not dispatch:
        print(f"FAIL: no span.server.* dispatch histograms in "
              f"telemetry snapshot (have {sorted(histograms)})")
        return 1
    collectors = telemetry_block.get("collectors") or {}
    if "gateway.gate" not in collectors or "gateway.wire" not in collectors:
        print(f"FAIL: gate/wire collectors missing from telemetry "
              f"snapshot (have {sorted(collectors)})")
        return 1
    ratio = collectors["gateway.wire"].get("compressed_ratio", "absent")
    if not (ratio is None or isinstance(ratio, (int, float))):
        print(f"FAIL: compressed_ratio must be null or a number, got {ratio!r}")
        return 1
    print(f"   ok: {len(histograms)} live histograms "
          f"({', '.join(sorted(dispatch))}); gate+wire collectors present")
    print("gateway smoke: OK")
    return 0


def sample_images(spec):
    from repro.engine.registry import SCENARIOS

    stream = SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)
    images, _labels = stream[0].target_test.arrays()
    return images


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", type=int, default=4, metavar="N",
                        help="distinct models (seeds) in the workload")
    parser.add_argument("--max-replicas", type=int, default=3)
    parser.add_argument("--requests", type=int, default=48, metavar="N",
                        help="concurrent predicts per timed workload")
    parser.add_argument("--batch", type=int, default=16, metavar="N",
                        help="images per timed predict request")
    parser.add_argument("--method", default="FineTune")
    parser.add_argument("--scenario", default="digits/mnist->usps")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when the full fleet is below this multiple of 1 replica",
    )
    args = parser.parse_args(argv)
    if args.models < 1 or args.max_replicas < 2:
        parser.error("need --models >= 1 and --max-replicas >= 2")
    return asyncio.run(run(args))


if __name__ == "__main__":
    sys.exit(main())
