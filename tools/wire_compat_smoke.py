#!/usr/bin/env python
"""Wire-protocol compatibility smoke — CI's ``wire-compat`` step.

Protocol v2 servers must serve JSON-only (proto 1) peers forever, and
the framing must be invisible to the science: the same request answered
over a JSON line and over a binary frame must be **bitwise identical**.
This smoke drives every v2 server in the repo from both sides:

1. **serve** — one checkpointed smoke cell behind a ``ServeApp``; the
   same predict batch is sent as a JSON line and as a binary frame and
   both answers are checked bitwise against a direct ``predict_multi``;
2. **gateway** — a gateway over a private-cache replica (registered as
   proto 2, so the checkpoint push itself crosses as raw compressed
   bytes); forced-JSON and forced-binary :class:`GatewayClient`\\ s must
   agree bitwise with the direct call;
3. **cluster** — a coordinator subprocess (v2) with a worker subprocess
   *and* client both pinned to JSON lines via ``REPRO_WIRE=1``; the
   delivered sweep must be bitwise-equal to a serial baseline run in a
   separate cache.

Exit codes: 0 ok, 1 an equality assertion failed, 2 infrastructure
error (process never came up).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Small enough to train in seconds, big enough for a real batch.
PROFILE_OVERRIDES = dict(
    samples_per_class=6, test_samples_per_class=8, epochs=2, warmup_epochs=1
)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn(command_args, cache_dir: Path, extra_env=None) -> subprocess.Popen:
    """A repro-experiments subprocess with its own private cache."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *command_args], env=env
    )


async def serve_leg(session, spec, images, direct) -> bool:
    from repro import netio
    from repro.serve import InferenceService, ServeApp

    print("2) serve: the same predict over a JSON line and a binary frame ...")
    app = ServeApp(InferenceService(session, max_delay_ms=1), spec)
    host, port = await app.start("127.0.0.1", 0)
    try:
        info = await netio.request_async(host, port, {"op": "info"}, proto=1)
        if int(info.get("proto", 1)) < 2:
            print(f"FAIL: serve does not advertise proto 2 (got {info.get('proto')})")
            return False
        v1 = await netio.request_async(
            host, port,
            {"op": "predict", "images": images.tolist(), "task_id": 0},
            proto=1,
        )
        v2 = await netio.request_async(
            host, port,
            {"op": "predict", "images": np.asarray(images, dtype=np.float64),
             "task_id": 0},
            proto=2,
        )
    finally:
        await app.close()
    for label, response in (("json", v1), ("binary", v2)):
        if not response.get("ok"):
            print(f"FAIL: serve {label} predict errored: {response.get('error')}")
            return False
        answer = np.asarray(response["predictions"], dtype=np.int64)
        if not np.array_equal(answer, direct):
            print(f"FAIL: serve {label} predictions differ from direct call")
            return False
    print(f"   ok: {len(images)} predictions identical over both framings")
    return True


async def gateway_leg(session, spec, images, direct, scratch: Path) -> bool:
    from repro import netio
    from repro.api import Session
    from repro.gateway import GatewayApp, GatewayClient
    from repro.gateway.replica import ReplicaApp
    from repro.serve import InferenceService

    print("3) gateway: forced-JSON vs forced-binary clients, v2 replica ...")
    gateway = GatewayApp(session, lease_timeout=30.0, retry_base_delay=0.005)
    replica_session = Session(cache_dir=scratch / "replica-cache")
    replica = ReplicaApp(InferenceService(replica_session, max_delay_ms=1))
    host, port = await gateway.start()
    rhost, rport = await replica.start()
    try:
        hello = await netio.request_async(
            host, port,
            {"op": "hello", "name": "compat", "host": rhost, "port": rport,
             "proto": netio.WIRE_VERSION},
        )
        if not hello.get("ok"):
            print(f"FAIL: replica registration refused: {hello.get('error')}")
            return False
        answers = {}
        for wire in ("json", "binary"):
            client = GatewayClient("127.0.0.1", session, attempts=8, wire=wire)
            client.port = port
            answers[wire] = await client.predict_async(spec, images, task_id=0)
        stats = await GatewayClient(
            f"127.0.0.1:{port}", session
        ).stats_async()
    finally:
        await replica.close()
        await gateway.close()
    for wire, answer in answers.items():
        if not np.array_equal(answer, direct):
            print(f"FAIL: gateway {wire} predictions differ from direct call")
            return False
    if stats["traffic"]["checkpoint_pushes"] < 1:
        print("FAIL: the replica never received a checkpoint push")
        return False
    print(
        f"   ok: both framings identical; checkpoint crossed as "
        f"proto-{stats['replicas'][0]['proto']} push"
    )
    return True


def cluster_leg(args, scratch: Path) -> bool:
    from repro.api import Session
    from repro.cluster import ClusterClient, format_address

    print(
        f"1) serial baseline: {args.method} x {args.seeds} seeds "
        f"(separate cache) ..."
    )
    os.environ["REPRO_CACHE_DIR"] = str(scratch / "serial-cache")
    session = Session(profile="smoke")
    spec = session.spec(
        args.method, args.scenario, profile_overrides=dict(PROFILE_OVERRIDES)
    )
    serial = session.sweep(spec, range(args.seeds))

    port = free_port()
    address = format_address("127.0.0.1", port)
    print(
        f"4) cluster: v2 coordinator at {address}; JSON-pinned worker "
        f"and client (REPRO_WIRE=1) ..."
    )
    procs = [
        spawn(
            ["cluster-coordinator", "--host", "127.0.0.1", "--port", str(port)],
            scratch / "coordinator-cache",
        ),
        spawn(
            [
                "cluster-worker", "--coordinator", f"127.0.0.1:{port}",
                "--name", "json-only-worker", "--poll-interval", "0.1",
            ],
            scratch / "worker-cache",
            extra_env={"REPRO_WIRE": "1"},
        ),
    ]
    try:
        client = ClusterClient(address, request_timeout=10.0)
        deadline = time.monotonic() + args.startup_timeout
        while True:
            try:
                if client.stats()["workers"]:
                    break
            except Exception:
                pass
            if time.monotonic() > deadline:
                print("FAIL: coordinator/worker never came up")
                return False
            time.sleep(0.2)

        os.environ["REPRO_CACHE_DIR"] = str(scratch / "client-cache")
        os.environ["REPRO_WIRE"] = "1"  # the client speaks JSON lines only
        try:
            clustered = Session(profile="smoke", executor=address).sweep(
                spec, range(args.seeds)
            )
        finally:
            del os.environ["REPRO_WIRE"]
        client.shutdown()
        for proc in procs:
            proc.wait(timeout=30)
        procs = []
    finally:
        for proc in procs:
            proc.terminate()

    def values(result):
        return {
            f"{metric}/{scenario.value}": list(stats.values)
            for metric, by_scenario in (("acc", result.acc), ("fgt", result.fgt))
            for scenario, stats in by_scenario.items()
        }

    ours, theirs = values(clustered), values(serial)
    if ours != theirs:
        print(f"FAIL: aggregates differ\n  cluster: {ours}\n  serial : {theirs}")
        return False
    print(
        f"   ok: {len(ours)} metric series identical across {args.seeds} "
        f"seeds through the JSON-only path"
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--method", default="CDCL")
    parser.add_argument("--scenario", default="digits/mnist->usps")
    parser.add_argument("--startup-timeout", type=float, default=60.0)
    args = parser.parse_args(argv)

    from repro.api import Session
    from repro.continual import Scenario
    from repro.engine.registry import SCENARIOS

    scratch = Path(tempfile.mkdtemp(prefix="wire-compat-"))
    print(f"scratch caches under {scratch}")

    if not cluster_leg(args, scratch):
        return 1

    # Serve + gateway legs share the client cache the cluster leg left
    # behind — but the cell they serve is trained fresh (checkpointed).
    session = Session(profile="smoke")
    handle = (
        session.run(args.method)
        .on(args.scenario)
        .profile("smoke", **PROFILE_OVERRIDES)
        .checkpoint()
        .start()
    )
    spec = handle.specs[0]
    handle.release()
    stream = SCENARIOS.get(spec.scenario).build(spec.resolved_profile(), spec.seed)
    images, _labels = stream[0].target_test.arrays()
    direct = session.load_model(spec).predict_multi(images, 0, [Scenario.TIL])[
        Scenario.TIL
    ]

    if not asyncio.run(serve_leg(session, spec, images, direct)):
        return 1
    if not asyncio.run(gateway_leg(session, spec, images, direct, scratch)):
        return 1
    print("wire compat smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
